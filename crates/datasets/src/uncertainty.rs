//! The uncertainty-generation pipeline of Section 5.1.
//!
//! Given a deterministic labelled dataset `D`, the paper:
//!
//! 1. assigns every point `w` a pdf `f_w` (Uniform, Normal or Exponential)
//!    with `E[f_w] = w` and all other parameters random;
//! 2. **Case 1** — builds a *perturbed* deterministic dataset `D'` by adding
//!    to each point noise sampled from `f_w` (Monte Carlo or MCMC);
//! 3. **Case 2** — builds an *uncertain* dataset `D''` whose objects are
//!    `(R, f_w)` with `R` the region containing most (95%) of `f_w`'s mass.
//!
//! Clustering `D'` ignores uncertainty; clustering `D''` models it. The score
//! `Θ = F(C'') − F(C')` then measures the benefit of modelling uncertainty.
//!
//! Spread parameters are drawn relative to each dimension's standard
//! deviation so the injected uncertainty is meaningful at every dataset's
//! scale (the paper leaves the random ranges unspecified).

use rand::Rng;
use rand::RngCore;
use ucpc_uncertain::sampling::Metropolis;
use ucpc_uncertain::{MomentArena, PdfFamily, UncertainObject, UnivariatePdf};

/// The pdf family injected into a benchmark dataset (the paper's "U", "N",
/// "E" table columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseKind {
    /// Uniform pdfs.
    Uniform,
    /// Normal pdfs.
    Normal,
    /// (Shifted) Exponential pdfs.
    Exponential,
}

impl NoiseKind {
    /// All three families, paper order.
    pub fn all() -> [NoiseKind; 3] {
        [
            NoiseKind::Uniform,
            NoiseKind::Normal,
            NoiseKind::Exponential,
        ]
    }

    /// Table-column label ("U", "N", "E").
    pub fn label(&self) -> &'static str {
        match self {
            NoiseKind::Uniform => "U",
            NoiseKind::Normal => "N",
            NoiseKind::Exponential => "E",
        }
    }

    /// The corresponding pdf family.
    pub fn family(&self) -> PdfFamily {
        match self {
            NoiseKind::Uniform => PdfFamily::Uniform,
            NoiseKind::Normal => PdfFamily::Normal,
            NoiseKind::Exponential => PdfFamily::Exponential,
        }
    }
}

/// How Case-1 perturbation noise is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PerturbMethod {
    /// Classic Monte Carlo (inverse-CDF draws).
    #[default]
    MonteCarlo,
    /// Markov-Chain Monte Carlo (random-walk Metropolis on the density).
    Mcmc,
}

/// Where the Case-2 uncertain object is centered.
///
/// Section 5.1's text derives `D''` objects directly from the original points
/// (`f = f_w`), which is [`Centering::TrueValue`], the default.
/// [`Centering::Observed`] instead translates the noise model onto the
/// observed (perturbed) value — the representation an application that only
/// ever sees noisy measurements would actually hold. Under observed
/// centering Case 1 and Case 2 share their expected values, so Θ isolates
/// *pure* variance-awareness; under true-value centering Case 2 additionally
/// benefits from noise-free expected values, as in the paper's protocol.
/// DESIGN.md discusses the trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Centering {
    /// Center `f` on the original point (`f = f_w`, the literal Section-5.1
    /// protocol; default).
    #[default]
    TrueValue,
    /// Center `f` on the observed (perturbed) value.
    Observed,
}

/// How the random spread of each assigned pdf scales with the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpreadScaling {
    /// Proportional to the measured value's magnitude (relative/percentage
    /// error — the regime of real sensors and of microarray probe noise,
    /// where uncertainty is informative because it co-varies with the
    /// signal). A floor of 20% of the dimension's standard deviation keeps
    /// near-zero values from becoming deterministic. Default.
    #[default]
    Magnitude,
    /// Proportional to the dimension's standard deviation only (homoscedastic
    /// noise: spreads are pure noise, uninformative about class structure).
    DimStd,
}

/// Uncertainty-generation configuration.
#[derive(Debug, Clone)]
pub struct UncertaintyModel {
    /// Injected pdf family.
    pub kind: NoiseKind,
    /// Spread range: each point/dimension draws a factor uniformly from this
    /// range and multiplies it by the [`SpreadScaling`] base.
    pub spread_range: (f64, f64),
    /// Probability mass the Case-2 domain region must contain (paper: 0.95).
    pub coverage: f64,
    /// Case-1 sampling method.
    pub perturb: PerturbMethod,
    /// Case-2 centering (see [`Centering`]).
    pub centering: Centering,
    /// Spread scaling regime (see [`SpreadScaling`]).
    pub scaling: SpreadScaling,
}

impl UncertaintyModel {
    /// The paper's configuration for a given pdf family: random spreads,
    /// 95% coverage regions, Monte Carlo perturbation, true-value centering,
    /// magnitude-proportional spreads.
    pub fn paper_default(kind: NoiseKind) -> Self {
        Self {
            kind,
            spread_range: (0.15, 0.6),
            coverage: 0.95,
            perturb: PerturbMethod::MonteCarlo,
            centering: Centering::TrueValue,
            scaling: SpreadScaling::Magnitude,
        }
    }
}

/// A paired Case-1/Case-2 dataset sharing one noise realization: `observed`
/// is the perturbed deterministic dataset `D'`, `uncertain` is the uncertain
/// dataset `D''` whose objects carry the noise model that produced the
/// corresponding observation.
#[derive(Debug, Clone)]
pub struct PairedDatasets {
    /// Case 1: point-mass objects at the observed values.
    pub observed: Vec<UncertainObject>,
    /// Case 2: uncertain objects with `coverage`-regions.
    pub uncertain: Vec<UncertainObject>,
}

/// The assigned pdfs `f_w` of every point (one pdf per point per dimension).
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use ucpc_datasets::uncertainty::{NoiseKind, PdfAssignment, UncertaintyModel};
///
/// let points = vec![vec![0.0, 1.0], vec![2.0, 3.0]];
/// let dim_std = vec![1.0, 1.0];
/// let model = UncertaintyModel::paper_default(NoiseKind::Normal);
/// let mut rng = StdRng::seed_from_u64(7);
/// let assignment = PdfAssignment::assign(&points, &dim_std, &model, &mut rng);
///
/// // Section 5.1: every assigned pdf's expected value is the point itself.
/// assert!((assignment.of(0)[0].mean() - 0.0).abs() < 1e-9);
///
/// // Case 1 (perturbed deterministic) and Case 2 (uncertain) datasets:
/// let pair = assignment.paired(&mut rng);
/// assert!(pair.observed[0].is_deterministic());
/// assert!(pair.uncertain[0].total_variance() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PdfAssignment {
    pdfs: Vec<Vec<UnivariatePdf>>,
    coverage: f64,
    perturb: PerturbMethod,
    centering: Centering,
}

impl PdfAssignment {
    /// Step 1 of Section 5.1: assigns every point a pdf with expected value
    /// exactly at the point and random spread scaled by `dim_std`.
    pub fn assign(
        points: &[Vec<f64>],
        dim_std: &[f64],
        model: &UncertaintyModel,
        rng: &mut dyn RngCore,
    ) -> Self {
        assert!(!points.is_empty(), "no points to assign pdfs to");
        let (lo, hi) = model.spread_range;
        assert!(lo > 0.0 && hi >= lo, "invalid spread range ({lo}, {hi})");
        let pdfs = points
            .iter()
            .map(|p| {
                assert_eq!(p.len(), dim_std.len(), "dimension mismatch");
                p.iter()
                    .zip(dim_std)
                    .map(|(&w, &sd_j)| {
                        let base = match model.scaling {
                            SpreadScaling::DimStd => sd_j,
                            SpreadScaling::Magnitude => w.abs().max(0.2 * sd_j),
                        };
                        let spread = rng.gen_range(lo..=hi) * base;
                        match model.kind {
                            NoiseKind::Uniform => {
                                // Half-width so that Var = spread^2/3.
                                UnivariatePdf::uniform_centered(w, spread)
                            }
                            NoiseKind::Normal => UnivariatePdf::normal(w, spread),
                            NoiseKind::Exponential => {
                                // Rate so that sd = spread; mean stays at w.
                                UnivariatePdf::exponential_with_mean(w, 1.0 / spread)
                            }
                        }
                    })
                    .collect()
            })
            .collect();
        Self {
            pdfs,
            coverage: model.coverage,
            perturb: model.perturb,
            centering: model.centering,
        }
    }

    /// Number of points covered.
    pub fn len(&self) -> usize {
        self.pdfs.len()
    }

    /// Whether the assignment is empty.
    pub fn is_empty(&self) -> bool {
        self.pdfs.is_empty()
    }

    /// The pdfs of point `i`.
    pub fn of(&self, i: usize) -> &[UnivariatePdf] {
        &self.pdfs[i]
    }

    /// Case 1: the perturbed deterministic dataset `D'` — each point replaced
    /// by one realization of its pdf, drawn by MC or MCMC.
    pub fn perturbed_points(&self, rng: &mut dyn RngCore) -> Vec<Vec<f64>> {
        let mcmc = Metropolis::default();
        self.pdfs
            .iter()
            .map(|dims| {
                dims.iter()
                    .map(|pdf| match self.perturb {
                        PerturbMethod::MonteCarlo => pdf.sample(rng),
                        PerturbMethod::Mcmc => {
                            let init = pdf.mean();
                            mcmc.sample(|x| pdf.density(x), init, 1, rng)[0]
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Case 1 as degenerate uncertain objects (point masses), ready for any
    /// `UncertainClusterer` implementation in `ucpc-core`.
    pub fn perturbed_objects(&self, rng: &mut dyn RngCore) -> Vec<UncertainObject> {
        self.perturbed_points(rng)
            .iter()
            .map(|p| UncertainObject::deterministic(p))
            .collect()
    }

    /// Case 2: the uncertain dataset `D''` — objects `(R, f_w)` with `R` the
    /// region containing `coverage` of the mass and `f_w` renormalized on it
    /// (true-value centering; see [`PdfAssignment::paired`] for the observed
    /// protocol).
    pub fn uncertain_objects(&self) -> Vec<UncertainObject> {
        self.pdfs
            .iter()
            .map(|dims| UncertainObject::with_coverage(dims.clone(), self.coverage))
            .collect()
    }

    /// Case 2 written straight into a borrowed [`MomentArena`] — the
    /// arena-native batch pipeline. Appends one row per assigned point,
    /// bit-identical to `MomentArena::from_objects(&self.uncertain_objects())`
    /// (same per-dimension truncation and the same moment formulas, fed
    /// through [`MomentArena::push_row_with`]), but with **zero per-object
    /// heap allocations**: no `UncertainObject`, no `Moments`, no pdf
    /// vectors — each dimension's truncated pdf lives on the stack just long
    /// enough to yield its `(mu, mu_2)` pair. Capacity for all rows is
    /// reserved up front, so after that single reservation the fill does not
    /// touch the allocator at all (pinned by the counting-allocator test in
    /// `tests/alloc_free_pipeline.rs`).
    pub fn assign_into_arena(&self, arena: &mut MomentArena) {
        let m = self.pdfs.first().map_or(0, Vec::len);
        arena.reserve_rows(self.len(), m);
        for dims in &self.pdfs {
            arena.push_row_with(dims.len(), |j| {
                let pdf = &dims[j];
                let region = pdf.central_region(self.coverage);
                if region.width() > 0.0 {
                    let t = pdf.truncate(region);
                    (t.mean(), t.second_moment())
                } else {
                    // Point mass: nothing to truncate (same branch as
                    // `UncertainObject::with_coverage`).
                    (pdf.mean(), pdf.second_moment())
                }
            });
        }
    }

    /// Convenience wrapper over [`PdfAssignment::assign_into_arena`]: the
    /// Case-2 dataset as a freshly reserved arena.
    pub fn uncertain_arena(&self) -> MomentArena {
        let m = self.pdfs.first().map_or(0, Vec::len);
        let mut arena = MomentArena::with_capacity(self.len(), m);
        self.assign_into_arena(&mut arena);
        arena
    }

    /// Builds the paired Case-1/Case-2 datasets from **one** shared noise
    /// realization: each point is observed once through its pdf; `D'` holds
    /// the bare observations and `D''` holds uncertain objects centered per
    /// the configured [`Centering`] — on the observation (realistic default:
    /// the noise model travels with the measured value) or on the true point
    /// (the literal Section-5.1 text).
    pub fn paired(&self, rng: &mut dyn RngCore) -> PairedDatasets {
        let observations = self.perturbed_points(rng);
        let observed = observations
            .iter()
            .map(|p| UncertainObject::deterministic(p))
            .collect();
        let uncertain = self
            .pdfs
            .iter()
            .zip(&observations)
            .map(|(dims, obs)| {
                let centered: Vec<UnivariatePdf> = match self.centering {
                    Centering::TrueValue => dims.clone(),
                    Centering::Observed => dims
                        .iter()
                        .zip(obs)
                        .map(|(pdf, &o)| pdf.translate(o - pdf.mean()))
                        .collect(),
                };
                UncertainObject::with_coverage(centered, self.coverage)
            })
            .collect();
        PairedDatasets {
            observed,
            uncertain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid_points() -> (Vec<Vec<f64>>, Vec<f64>) {
        let points: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i % 5) as f64 * 2.0])
            .collect();
        (points, vec![5.0, 3.0])
    }

    #[test]
    fn assigned_pdfs_have_expected_value_at_the_point() {
        let (points, std) = grid_points();
        let mut rng = StdRng::seed_from_u64(60);
        for kind in NoiseKind::all() {
            let model = UncertaintyModel::paper_default(kind);
            let a = PdfAssignment::assign(&points, &std, &model, &mut rng);
            for (i, p) in points.iter().enumerate() {
                for (j, &w) in p.iter().enumerate() {
                    let mu = a.of(i)[j].mean();
                    assert!(
                        (mu - w).abs() < 1e-9,
                        "{kind:?}: E[f_w] = {mu}, want {w} (Section 5.1 requirement)"
                    );
                }
            }
        }
    }

    #[test]
    fn case2_objects_have_finite_regions_with_coverage() {
        let (points, std) = grid_points();
        let mut rng = StdRng::seed_from_u64(61);
        let model = UncertaintyModel::paper_default(NoiseKind::Normal);
        let a = PdfAssignment::assign(&points, &std, &model, &mut rng);
        let objects = a.uncertain_objects();
        assert_eq!(objects.len(), points.len());
        for o in &objects {
            for side in o.region().sides() {
                assert!(side.lo.is_finite() && side.hi.is_finite());
                assert!(side.width() > 0.0);
            }
        }
    }

    #[test]
    fn arena_pipeline_matches_the_object_route_bit_for_bit() {
        let (points, std) = grid_points();
        for (s, kind) in NoiseKind::all().into_iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(70 + s as u64);
            let model = UncertaintyModel::paper_default(kind);
            let a = PdfAssignment::assign(&points, &std, &model, &mut rng);
            let via_objects = MomentArena::from_objects(&a.uncertain_objects());
            let direct = a.uncertain_arena();
            assert_eq!(
                direct, via_objects,
                "{kind:?}: arena-native fill diverged from the object route"
            );
        }
    }

    #[test]
    fn assign_into_arena_appends_to_an_existing_arena() {
        let (points, std) = grid_points();
        let mut rng = StdRng::seed_from_u64(72);
        let model = UncertaintyModel::paper_default(NoiseKind::Normal);
        let a = PdfAssignment::assign(&points, &std, &model, &mut rng);
        let mut arena = a.uncertain_arena();
        let first = arena.len();
        a.assign_into_arena(&mut arena);
        assert_eq!(arena.len(), 2 * first);
        // Appended rows repeat the first batch exactly.
        for i in 0..first {
            assert_eq!(arena.mu_row(i), arena.mu_row(first + i));
            assert_eq!(arena.var_row(i), arena.var_row(first + i));
        }
    }

    #[test]
    fn case1_monte_carlo_perturbation_is_unbiased() {
        let (points, std) = grid_points();
        let mut rng = StdRng::seed_from_u64(62);
        let model = UncertaintyModel::paper_default(NoiseKind::Uniform);
        let a = PdfAssignment::assign(&points, &std, &model, &mut rng);
        // Average many perturbations of point 0 -> its original position.
        let (mut s0, mut s1) = (0.0, 0.0);
        let n = 20_000;
        for _ in 0..n {
            let d = a.perturbed_points(&mut rng);
            s0 += d[0][0];
            s1 += d[0][1];
        }
        assert!((s0 / n as f64 - points[0][0]).abs() < 0.1);
        assert!((s1 / n as f64 - points[0][1]).abs() < 0.1);
    }

    #[test]
    fn mcmc_perturbation_stays_in_support() {
        let (points, std) = grid_points();
        let mut rng = StdRng::seed_from_u64(63);
        let model = UncertaintyModel {
            perturb: PerturbMethod::Mcmc,
            ..UncertaintyModel::paper_default(NoiseKind::Uniform)
        };
        let a = PdfAssignment::assign(&points, &std, &model, &mut rng);
        let d = a.perturbed_points(&mut rng);
        for (i, p) in d.iter().enumerate() {
            for (j, &x) in p.iter().enumerate() {
                let support = a.of(i)[j].support();
                assert!(support.contains(x), "MCMC perturbation escaped support");
            }
        }
    }

    #[test]
    fn perturbed_objects_are_deterministic() {
        let (points, std) = grid_points();
        let mut rng = StdRng::seed_from_u64(64);
        let model = UncertaintyModel::paper_default(NoiseKind::Exponential);
        let a = PdfAssignment::assign(&points, &std, &model, &mut rng);
        for o in a.perturbed_objects(&mut rng) {
            assert!(o.is_deterministic());
            assert_eq!(o.total_variance(), 0.0);
        }
    }

    #[test]
    fn paired_observed_centering_tracks_observations() {
        let (points, std) = grid_points();
        let mut rng = StdRng::seed_from_u64(66);
        let model = UncertaintyModel {
            centering: Centering::Observed,
            ..UncertaintyModel::paper_default(NoiseKind::Normal)
        };
        let a = PdfAssignment::assign(&points, &std, &model, &mut rng);
        let pair = a.paired(&mut rng);
        assert_eq!(pair.observed.len(), pair.uncertain.len());
        for (obs, unc) in pair.observed.iter().zip(&pair.uncertain) {
            // The uncertain object's mean is the observation, not the truth
            // (symmetric pdfs; exponential shifts are checked separately).
            for j in 0..obs.dims() {
                assert!(
                    (unc.mu()[j] - obs.mu()[j]).abs() < 1e-6,
                    "observed-centered object must sit on the observation"
                );
            }
            assert!(unc.total_variance() > 0.0);
        }
    }

    #[test]
    fn paired_true_value_centering_matches_uncertain_objects() {
        let (points, std) = grid_points();
        let mut rng = StdRng::seed_from_u64(67);
        let model = UncertaintyModel {
            centering: Centering::TrueValue,
            ..UncertaintyModel::paper_default(NoiseKind::Uniform)
        };
        let a = PdfAssignment::assign(&points, &std, &model, &mut rng);
        let pair = a.paired(&mut rng);
        let direct = a.uncertain_objects();
        for (p, d) in pair.uncertain.iter().zip(&direct) {
            assert_eq!(p.mu(), d.mu());
        }
    }

    #[test]
    fn paired_observed_variance_matches_assigned_model() {
        // Translation preserves the noise model's variance.
        let (points, std) = grid_points();
        let mut rng = StdRng::seed_from_u64(68);
        let model = UncertaintyModel {
            centering: Centering::Observed,
            ..UncertaintyModel::paper_default(NoiseKind::Exponential)
        };
        let a = PdfAssignment::assign(&points, &std, &model, &mut rng);
        let pair = a.paired(&mut rng);
        let reference = a.uncertain_objects();
        for (p, r) in pair.uncertain.iter().zip(&reference) {
            assert!(
                (p.total_variance() - r.total_variance()).abs() < 1e-6 * (1.0 + r.total_variance()),
                "translation must preserve truncated variance"
            );
        }
    }

    #[test]
    fn exponential_case2_variance_is_positive_and_bounded() {
        let (points, std) = grid_points();
        let mut rng = StdRng::seed_from_u64(65);
        let model = UncertaintyModel::paper_default(NoiseKind::Exponential);
        let a = PdfAssignment::assign(&points, &std, &model, &mut rng);
        for o in a.uncertain_objects() {
            let v = o.total_variance();
            assert!(v > 0.0 && v.is_finite());
        }
    }
}
