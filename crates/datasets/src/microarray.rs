//! Probe-level-uncertainty microarray simulator (Table 1(b) substitutes).
//!
//! The paper's real datasets — Neuroblastoma (22,282 genes x 14 arrays) and
//! Leukaemia (22,690 genes x 21 arrays) — carry *inherent* probe-level
//! uncertainty extracted with the multi-mgMOS model of the PUMA package,
//! which summarizes each expression measurement as a Normal pdf whose
//! standard deviation shrinks with signal intensity. Neither the Broad
//! Institute data nor PUMA is available offline, so this module generates
//! gene-expression matrices with the same statistical interface:
//!
//! * genes belong to latent co-expression groups (the structure clustering
//!   should recover);
//! * log-intensities combine an array effect, a group-by-array profile and
//!   gene-level noise;
//! * each measurement's uncertainty is a Normal pdf whose sd decreases with
//!   intensity (mgMOS's signature intensity–variance coupling).
//!
//! Objects are genes (dimensions = arrays), exactly as in the paper's
//! clustering of gene-expression profiles.

use rand::Rng;
use rand::RngCore;
use ucpc_uncertain::{UncertainObject, UnivariatePdf};

/// Shape of a microarray dataset (a row of Table 1(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroarraySpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Number of genes (objects to cluster).
    pub genes: usize,
    /// Number of arrays (attributes per object).
    pub arrays: usize,
}

/// Neuroblastoma: 22,282 genes, 14 arrays.
pub const NEUROBLASTOMA: MicroarraySpec = MicroarraySpec {
    name: "Neuroblastoma",
    genes: 22_282,
    arrays: 14,
};
/// Leukaemia: 22,690 genes, 21 arrays.
pub const LEUKAEMIA: MicroarraySpec = MicroarraySpec {
    name: "Leukaemia",
    genes: 22_690,
    arrays: 21,
};

/// Configuration of the probe-level simulator.
#[derive(Debug, Clone)]
pub struct MicroarraySimulator {
    /// Number of latent co-expression groups.
    pub groups: usize,
    /// Scale of group-by-array expression profiles (log2 units).
    pub profile_scale: f64,
    /// Gene-level residual noise (log2 units).
    pub gene_noise: f64,
    /// Probe-level uncertainty at the dimmest intensities (log2 units).
    pub max_probe_sd: f64,
    /// Probe-level uncertainty floor at the brightest intensities.
    pub min_probe_sd: f64,
    /// Probability mass retained in each object's domain region.
    pub coverage: f64,
}

impl Default for MicroarraySimulator {
    fn default() -> Self {
        Self {
            groups: 8,
            profile_scale: 2.0,
            gene_noise: 0.4,
            max_probe_sd: 1.2,
            min_probe_sd: 0.1,
            coverage: 0.95,
        }
    }
}

/// A simulated microarray dataset: uncertain gene profiles plus the latent
/// group of each gene (usable as a reference classification in tests; the
/// paper's evaluation on these datasets uses internal criteria only).
#[derive(Debug, Clone)]
pub struct MicroarrayDataset {
    /// The generating spec (possibly gene-subsampled).
    pub spec: MicroarraySpec,
    /// One uncertain object per gene; dimensions are arrays.
    pub objects: Vec<UncertainObject>,
    /// Latent co-expression group of each gene.
    pub latent_groups: Vec<usize>,
}

impl MicroarraySimulator {
    /// Simulates `spec` in full.
    pub fn simulate(&self, spec: MicroarraySpec, rng: &mut dyn RngCore) -> MicroarrayDataset {
        self.simulate_genes(spec, spec.genes, rng)
    }

    /// Simulates `spec` with only `genes` genes (the experiment harness
    /// subsamples for the O(n²)+ baselines, as any practical evaluation on
    /// 22k-gene data must; the per-gene statistical model is unchanged).
    pub fn simulate_genes(
        &self,
        spec: MicroarraySpec,
        genes: usize,
        rng: &mut dyn RngCore,
    ) -> MicroarrayDataset {
        assert!(genes > 0, "need at least one gene");
        assert!(self.groups > 0, "need at least one latent group");
        let arrays = spec.arrays;

        // Array effects (chip-to-chip normalization offsets).
        let array_effect: Vec<f64> = (0..arrays).map(|_| rng.gen_range(-0.5..0.5)).collect();
        // Group-by-array expression profiles.
        let profiles: Vec<Vec<f64>> = (0..self.groups)
            .map(|_| {
                (0..arrays)
                    .map(|_| gaussian(rng) * self.profile_scale)
                    .collect()
            })
            .collect();

        let mut objects = Vec::with_capacity(genes);
        let mut latent_groups = Vec::with_capacity(genes);
        for g in 0..genes {
            let group = g % self.groups; // balanced groups, deterministic
                                         // Baseline abundance of this gene (log2 scale, typical range).
            let abundance: f64 = rng.gen_range(4.0..12.0);
            let dims: Vec<UnivariatePdf> = (0..arrays)
                .map(|a| {
                    let level = abundance
                        + array_effect[a]
                        + profiles[group][a]
                        + gaussian(rng) * self.gene_noise;
                    // mgMOS-style intensity-dependent uncertainty: dim probes
                    // are noisy, bright probes are precise. Map the level
                    // through a logistic ramp between max and min sd.
                    let t = ((level - 4.0) / 8.0).clamp(0.0, 1.0);
                    let sd = self.max_probe_sd + t * (self.min_probe_sd - self.max_probe_sd);
                    UnivariatePdf::normal(level, sd.max(1e-3))
                })
                .collect();
            objects.push(UncertainObject::with_coverage(dims, self.coverage));
            latent_groups.push(group);
        }

        MicroarrayDataset {
            spec: MicroarraySpec { genes, ..spec },
            objects,
            latent_groups,
        }
    }
}

fn gaussian(rng: &mut dyn RngCore) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_match_table_1b() {
        let mut rng = StdRng::seed_from_u64(70);
        let sim = MicroarraySimulator::default();
        let d = sim.simulate_genes(NEUROBLASTOMA, 200, &mut rng);
        assert_eq!(d.objects.len(), 200);
        assert!(d.objects.iter().all(|o| o.dims() == 14));
        let d = sim.simulate_genes(LEUKAEMIA, 150, &mut rng);
        assert!(d.objects.iter().all(|o| o.dims() == 21));
    }

    #[test]
    fn objects_carry_inherent_normal_uncertainty() {
        let mut rng = StdRng::seed_from_u64(71);
        let d = MicroarraySimulator::default().simulate_genes(NEUROBLASTOMA, 50, &mut rng);
        for o in &d.objects {
            assert!(o.total_variance() > 0.0, "probe-level uncertainty missing");
            assert!(o
                .families()
                .iter()
                .all(|f| *f == ucpc_uncertain::PdfFamily::Normal));
        }
    }

    #[test]
    fn intensity_variance_coupling_holds() {
        // Bright genes must on average be less uncertain than dim genes.
        let mut rng = StdRng::seed_from_u64(72);
        let d = MicroarraySimulator::default().simulate_genes(LEUKAEMIA, 400, &mut rng);
        let mut bright = Vec::new();
        let mut dim = Vec::new();
        for o in &d.objects {
            let level: f64 = o.mu().iter().sum::<f64>() / o.dims() as f64;
            let sd = (o.total_variance() / o.dims() as f64).sqrt();
            if level > 10.0 {
                bright.push(sd);
            } else if level < 7.0 {
                dim.push(sd);
            }
        }
        assert!(!bright.is_empty() && !dim.is_empty(), "need both tails");
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&bright) < avg(&dim),
            "bright genes should be more precise: {} vs {}",
            avg(&bright),
            avg(&dim)
        );
    }

    #[test]
    fn latent_groups_are_balanced_and_recoverable_in_expectation() {
        let mut rng = StdRng::seed_from_u64(73);
        let sim = MicroarraySimulator {
            groups: 4,
            ..Default::default()
        };
        let d = sim.simulate_genes(NEUROBLASTOMA, 120, &mut rng);
        let mut counts = vec![0usize; 4];
        for &g in &d.latent_groups {
            counts[g] += 1;
        }
        assert_eq!(counts, vec![30; 4]);
    }

    #[test]
    fn simulation_is_seed_deterministic() {
        let sim = MicroarraySimulator::default();
        let a = sim.simulate_genes(NEUROBLASTOMA, 30, &mut StdRng::seed_from_u64(9));
        let b = sim.simulate_genes(NEUROBLASTOMA, 30, &mut StdRng::seed_from_u64(9));
        for (x, y) in a.objects.iter().zip(&b.objects) {
            assert_eq!(x.mu(), y.mu());
        }
    }
}
