//! Dataset I/O: CSV import of labelled deterministic data (so the original
//! UCI files can be dropped in when available) and a portable text format
//! for uncertain datasets.
//!
//! The CSV reader accepts the layout the UCI repository's numeric datasets
//! conventionally use: one object per line, numeric attributes separated by
//! commas, the class label in the last column (numeric or symbolic; symbolic
//! labels are interned in first-appearance order). Blank lines and lines
//! starting with `#` are skipped.

use crate::benchmark::{DatasetSpec, LabeledDataset};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Errors raised by the dataset readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A malformed record with its 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The file contained no data records.
    Empty,
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::Empty => write!(f, "no data records found"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses a labelled CSV dataset from a string (attributes..., label).
pub fn parse_labeled_csv(name: &'static str, content: &str) -> Result<LabeledDataset, IoError> {
    let mut points: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    let mut label_names: Vec<String> = Vec::new();
    let mut attributes = 0usize;

    for (idx, raw) in content.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() < 2 {
            return Err(IoError::Parse {
                line,
                message: format!("expected at least 2 fields, got {}", fields.len()),
            });
        }
        let (attrs, label_field) = fields.split_at(fields.len() - 1);
        if points.is_empty() {
            attributes = attrs.len();
        } else if attrs.len() != attributes {
            return Err(IoError::Parse {
                line,
                message: format!("expected {attributes} attributes, got {}", attrs.len()),
            });
        }
        let mut p = Vec::with_capacity(attributes);
        for (j, a) in attrs.iter().enumerate() {
            let v: f64 = a.parse().map_err(|_| IoError::Parse {
                line,
                message: format!("attribute {j} is not numeric: {a:?}"),
            })?;
            p.push(v);
        }
        let label_str = label_field[0];
        let label = match label_names.iter().position(|l| l == label_str) {
            Some(i) => i,
            None => {
                label_names.push(label_str.to_string());
                label_names.len() - 1
            }
        };
        points.push(p);
        labels.push(label);
    }

    if points.is_empty() {
        return Err(IoError::Empty);
    }
    let spec = DatasetSpec {
        name,
        objects: points.len(),
        attributes,
        classes: label_names.len(),
    };
    Ok(LabeledDataset {
        spec,
        points,
        labels,
    })
}

/// Reads a labelled CSV dataset from a file.
pub fn read_labeled_csv(
    name: &'static str,
    path: impl AsRef<Path>,
) -> Result<LabeledDataset, IoError> {
    let content = fs::read_to_string(path)?;
    parse_labeled_csv(name, &content)
}

/// Serializes a labelled dataset back to the CSV layout accepted by
/// [`parse_labeled_csv`] (numeric labels).
pub fn to_labeled_csv(dataset: &LabeledDataset) -> String {
    let mut out = String::new();
    for (p, &l) in dataset.points.iter().zip(&dataset.labels) {
        let attrs: Vec<String> = p.iter().map(|v| format!("{v}")).collect();
        out.push_str(&attrs.join(","));
        out.push(',');
        out.push_str(&l.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a tiny dataset
5.1,3.5,setosa
4.9,3.0,setosa

6.3,3.3,virginica
5.8,2.7,virginica
";

    #[test]
    fn parses_symbolic_labels_in_order() {
        let d = parse_labeled_csv("tiny", SAMPLE).unwrap();
        assert_eq!(d.spec.objects, 4);
        assert_eq!(d.spec.attributes, 2);
        assert_eq!(d.spec.classes, 2);
        assert_eq!(d.labels, vec![0, 0, 1, 1]);
        assert_eq!(d.points[0], vec![5.1, 3.5]);
    }

    #[test]
    fn round_trips_through_csv() {
        let d = parse_labeled_csv("tiny", SAMPLE).unwrap();
        let csv = to_labeled_csv(&d);
        let d2 = parse_labeled_csv("tiny2", &csv).unwrap();
        assert_eq!(d.points, d2.points);
        assert_eq!(d.labels, d2.labels);
    }

    #[test]
    fn rejects_ragged_rows() {
        let bad = "1.0,2.0,a\n1.0,b\n";
        match parse_labeled_csv("bad", bad) {
            Err(IoError::Parse { line: 2, .. }) => {}
            other => panic!("expected parse error on line 2, got {other:?}"),
        }
    }

    #[test]
    fn rejects_non_numeric_attributes() {
        let bad = "1.0,x,a\n";
        assert!(matches!(
            parse_labeled_csv("bad", bad),
            Err(IoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(
            parse_labeled_csv("empty", "# only comments\n"),
            Err(IoError::Empty)
        ));
    }

    #[test]
    fn file_round_trip() {
        let d = parse_labeled_csv("tiny", SAMPLE).unwrap();
        let path = std::env::temp_dir().join("ucpc_io_test.csv");
        fs::write(&path, to_labeled_csv(&d)).unwrap();
        let d2 = read_labeled_csv("tiny", &path).unwrap();
        assert_eq!(d.points, d2.points);
        let _ = fs::remove_file(path);
    }
}
