//! U-AHC — agglomerative hierarchical clustering of uncertain objects
//! (Gullo, Ponti, Tagarelli & Greco, ICDM 2008) — "UAHC" in the paper.
//!
//! The published U-AHC compares cluster prototypes (mixture models) with an
//! information-theoretic dissimilarity. An exact reimplementation of that
//! dissimilarity is out of the paper's scope (it is a baseline here, cited
//! but not re-derived); this module implements the same *algorithmic shape* —
//! bottom-up agglomeration over uncertain objects with mixture-model cluster
//! prototypes — using the expected squared distance `ÊD` between mixture
//! prototypes (Lemma 2 + Lemma 3 closed forms) as the merge criterion.
//! Group-average linkage over `ÊD` is available as an alternative. The
//! substitution is recorded in DESIGN.md; what the evaluation needs from this
//! baseline is its O(n² .. n³) hierarchical behaviour and its accuracy tier,
//! both preserved.

use rand::RngCore;
use ucpc_core::framework::{validate_input, ClusterError, Clustering, UncertainClusterer};
use ucpc_core::objective::ClusterStats;
use ucpc_uncertain::distance::expected_sq_distance_from_moments;
use ucpc_uncertain::UncertainObject;

/// Linkage criterion for the agglomeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Linkage {
    /// Distance between cluster mixture prototypes:
    /// `ÊD(C_MM(A), C_MM(B))` via Lemmas 2–3 (the default, closest in
    /// spirit to the prototype-based U-AHC).
    #[default]
    MixturePrototype,
    /// Group-average of pairwise `ÊD` between members (UPGMA).
    GroupAverage,
}

/// Configuration of the agglomerative baseline.
#[derive(Debug, Clone, Default)]
pub struct Uahc {
    /// Merge criterion.
    pub linkage: Linkage,
}

/// A single merge step of the dendrogram: clusters `a` and `b` (indices into
/// the current forest) merged at `height`.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// First merged cluster's representative object index.
    pub a: usize,
    /// Second merged cluster's representative object index.
    pub b: usize,
    /// Merge dissimilarity.
    pub height: f64,
}

/// Outcome of a U-AHC run.
#[derive(Debug, Clone)]
pub struct UahcResult {
    /// The partition obtained by cutting the dendrogram at `k` clusters.
    pub clustering: Clustering,
    /// The merge sequence (length `n - k`), heights non-decreasing for
    /// monotone linkages.
    pub merges: Vec<Merge>,
}

impl Uahc {
    /// Agglomerates `data` bottom-up until `k` clusters remain.
    pub fn run(&self, data: &[UncertainObject], k: usize) -> Result<UahcResult, ClusterError> {
        validate_input(data, k)?;
        let n = data.len();

        // Forest state: cluster stats (for mixture prototypes), member lists,
        // and an alive flag per slot.
        let mut stats: Vec<ClusterStats> = data
            .iter()
            .map(|o| ClusterStats::from_members(std::iter::once(o)))
            .collect();
        let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let mut alive = vec![true; n];

        // Pairwise dissimilarity matrix over alive clusters.
        let mut dist = vec![f64::INFINITY; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.dissimilarity(&stats[i], &stats[j], &members[i], &members[j], data);
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }

        let mut merges = Vec::with_capacity(n - k);
        let mut remaining = n;
        while remaining > k {
            // Find the closest alive pair.
            let (mut bi, mut bj, mut bd) = (usize::MAX, usize::MAX, f64::INFINITY);
            for i in 0..n {
                if !alive[i] {
                    continue;
                }
                for j in (i + 1)..n {
                    if !alive[j] {
                        continue;
                    }
                    let d = dist[i * n + j];
                    if d < bd {
                        bd = d;
                        bi = i;
                        bj = j;
                    }
                }
            }

            // Merge j into i.
            merges.push(Merge {
                a: bi,
                b: bj,
                height: bd,
            });
            let moved = std::mem::take(&mut members[bj]);
            for &obj in &moved {
                stats[bi].add(data[obj].moments());
            }
            members[bi].extend(moved);
            alive[bj] = false;
            remaining -= 1;

            // Refresh distances from the merged cluster.
            for j in 0..n {
                if j == bi || !alive[j] {
                    continue;
                }
                let d = self.dissimilarity(&stats[bi], &stats[j], &members[bi], &members[j], data);
                dist[bi * n + j] = d;
                dist[j * n + bi] = d;
            }
        }

        // Labels from the surviving clusters.
        let mut labels = vec![0usize; n];
        let mut next = 0usize;
        for i in 0..n {
            if alive[i] {
                for &obj in &members[i] {
                    labels[obj] = next;
                }
                next += 1;
            }
        }
        debug_assert_eq!(next, k, "agglomeration must stop at exactly k clusters");
        Ok(UahcResult {
            clustering: Clustering::new(labels, k),
            merges,
        })
    }

    fn dissimilarity(
        &self,
        a: &ClusterStats,
        b: &ClusterStats,
        members_a: &[usize],
        members_b: &[usize],
        data: &[UncertainObject],
    ) -> f64 {
        match self.linkage {
            Linkage::MixturePrototype => {
                let ma = a.mixture_moments();
                let mb = b.mixture_moments();
                expected_sq_distance_from_moments(ma.mu(), ma.mu2(), mb.mu(), mb.mu2())
            }
            Linkage::GroupAverage => {
                let mut acc = 0.0;
                for &i in members_a {
                    for &j in members_b {
                        acc += ucpc_uncertain::distance::expected_sq_distance(&data[i], &data[j]);
                    }
                }
                acc / (members_a.len() * members_b.len()) as f64
            }
        }
    }
}

impl UncertainClusterer for Uahc {
    fn name(&self) -> &'static str {
        "UAHC"
    }

    fn cluster(
        &self,
        data: &[UncertainObject],
        k: usize,
        _rng: &mut dyn RngCore,
    ) -> Result<Clustering, ClusterError> {
        Ok(self.run(data, k)?.clustering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucpc_uncertain::UnivariatePdf;

    fn blobs() -> Vec<UncertainObject> {
        let mut data = Vec::new();
        for c in [0.0, 15.0, 30.0] {
            for i in 0..5 {
                data.push(UncertainObject::new(vec![
                    UnivariatePdf::normal(c + (i % 2) as f64 * 0.3, 0.2),
                    UnivariatePdf::normal(c, 0.2),
                ]));
            }
        }
        data
    }

    #[test]
    fn recovers_three_blobs_with_both_linkages() {
        let data = blobs();
        for linkage in [Linkage::MixturePrototype, Linkage::GroupAverage] {
            let r = Uahc { linkage }.run(&data, 3).unwrap();
            let l = r.clustering.labels();
            for g in 0..3 {
                let group = &l[g * 5..(g + 1) * 5];
                assert!(
                    group.iter().all(|&x| x == group[0]),
                    "{linkage:?}: group {g} split: {l:?}"
                );
            }
            assert_eq!(r.clustering.non_empty(), 3);
        }
    }

    #[test]
    fn merge_count_is_n_minus_k() {
        let data = blobs();
        let r = Uahc::default().run(&data, 4).unwrap();
        assert_eq!(r.merges.len(), data.len() - 4);
    }

    #[test]
    fn k_equals_n_is_identity() {
        let data = blobs();
        let r = Uahc::default().run(&data, data.len()).unwrap();
        assert_eq!(r.merges.len(), 0);
        assert_eq!(r.clustering.non_empty(), data.len());
    }

    #[test]
    fn k_equals_one_merges_everything() {
        let data = blobs();
        let r = Uahc::default().run(&data, 1).unwrap();
        assert!(r.clustering.labels().iter().all(|&l| l == 0));
    }
}
