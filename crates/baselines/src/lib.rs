//! # ucpc-baselines — competing algorithms from the paper's evaluation
//!
//! Every algorithm the paper compares UCPC against (Section 5), implemented
//! from the cited formulations:
//!
//! * [`ukmeans::UkMeans`] — fast UK-means (Lee et al. \[14\], Eq. 8 reduction);
//! * [`bukmeans::BasicUkMeans`] — the original sample-based UK-means
//!   (Chau et al. \[4\]);
//! * [`pruning::PruningUkMeans`] — MinMax-BB \[16\] and VDBiP \[11\] pruning with
//!   the cluster-shift technique \[17\];
//! * [`mmvar::MmVar`] — mixture-model variance minimization (Gullo et al. \[8\]);
//! * [`ukmedoids::UkMedoids`] — K-medoids over pairwise expected distances
//!   (Gullo et al. \[7\]);
//! * [`uahc::Uahc`] — agglomerative hierarchical clustering (Gullo et al. \[9\]);
//! * [`fdbscan::FdbScan`] — fuzzy density-based clustering (Kriegel & Pfeifle
//!   \[12\]);
//! * [`foptics::Foptics`] — fuzzy hierarchical density-based ordering
//!   (Kriegel & Pfeifle \[13\]);
//! * [`kmeans::KMeans`] — deterministic Lloyd substrate.
//!
//! All implement [`ucpc_core::framework::UncertainClusterer`], so the
//! experiment harness drives them uniformly.

#![warn(missing_docs)]

pub mod bukmeans;
pub mod fdbscan;
pub mod foptics;
pub mod kmeans;
pub mod mmvar;
pub mod pruning;
pub mod uahc;
pub mod ukmeans;
pub mod ukmedoids;

pub use bukmeans::BasicUkMeans;
pub use fdbscan::FdbScan;
pub use foptics::Foptics;
pub use kmeans::KMeans;
pub use mmvar::{MmVar, MmVarStrategy};
pub use pruning::{PruningStrategy, PruningUkMeans};
pub use uahc::Uahc;
pub use ukmeans::UkMeans;
pub use ukmedoids::UkMedoids;
