//! FOPTICS — fuzzy hierarchical density-based cluster ordering
//! (Kriegel & Pfeifle, ICDM 2005) — "FOPT" in the paper's tables.
//!
//! OPTICS lifted to uncertain objects: distances between objects are
//! *expected* (Euclidean) distances estimated from matched sample pairs, the
//! fuzzy core distance of an object is the `min_pts`-th smallest expected
//! distance to the other objects, and the classical OPTICS sweep produces a
//! reachability ordering. A flat partition is extracted by cutting the
//! reachability plot: the cut threshold is searched so that the requested
//! number of clusters is obtained when possible (density permitting), which
//! is how this baseline participates in the paper's fixed-`k` protocol.

use rand::RngCore;
use ucpc_core::framework::{validate_input, ClusterError, Clustering, UncertainClusterer};
use ucpc_uncertain::distance::{expected_distance_between_sampled, Metric};
use ucpc_uncertain::sampling::SampleCache;
use ucpc_uncertain::UncertainObject;

/// Configuration of FOPTICS.
#[derive(Debug, Clone)]
pub struct Foptics {
    /// Neighborhood size for the fuzzy core distance.
    pub min_pts: usize,
    /// Samples per object for expected-distance estimation.
    pub samples_per_object: usize,
}

impl Default for Foptics {
    fn default() -> Self {
        Self {
            min_pts: 4,
            samples_per_object: 32,
        }
    }
}

/// Outcome of a FOPTICS run.
#[derive(Debug, Clone)]
pub struct FopticsResult {
    /// Flat partition extracted from the ordering.
    pub clustering: Clustering,
    /// Object visit order of the OPTICS sweep.
    pub ordering: Vec<usize>,
    /// Reachability distance of each object *in visit order*
    /// (`f64::INFINITY` for each sweep start).
    pub reachability: Vec<f64>,
    /// The reachability threshold used for the flat cut.
    pub threshold: f64,
}

impl Foptics {
    /// Runs the OPTICS sweep and extracts `k` clusters from the reachability
    /// plot (fewer if the density structure cannot support `k`).
    pub fn run(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<FopticsResult, ClusterError> {
        validate_input(data, k)?;
        let n = data.len();
        let cache = SampleCache::build(data, self.samples_per_object, rng);

        // Pairwise expected Euclidean distances (fuzzy distance estimates).
        let mut dist = vec![0.0f64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d =
                    expected_distance_between_sampled(cache.of(i), cache.of(j), Metric::Euclidean);
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }

        // Fuzzy core distance: min_pts-th smallest expected distance.
        let core_dist: Vec<f64> = (0..n)
            .map(|i| {
                let mut ds: Vec<f64> = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| dist[i * n + j])
                    .collect();
                ds.sort_by(f64::total_cmp);
                let idx = self.min_pts.min(ds.len()).saturating_sub(1);
                ds.get(idx).copied().unwrap_or(f64::INFINITY)
            })
            .collect();

        // OPTICS sweep with a linear-scan priority structure (n is moderate
        // for the density baselines, exactly as in the paper's evaluation).
        let mut visited = vec![false; n];
        let mut reach = vec![f64::INFINITY; n];
        let mut ordering = Vec::with_capacity(n);
        let mut reach_in_order = Vec::with_capacity(n);

        for start in 0..n {
            if visited[start] {
                continue;
            }
            // Begin a new sweep at an unvisited object.
            let mut current = start;
            let mut current_reach = f64::INFINITY;
            loop {
                visited[current] = true;
                ordering.push(current);
                reach_in_order.push(current_reach);

                // Update reachability of unvisited objects through `current`.
                for j in 0..n {
                    if visited[j] {
                        continue;
                    }
                    let r = core_dist[current].max(dist[current * n + j]);
                    if r < reach[j] {
                        reach[j] = r;
                    }
                }

                // Next: unvisited object with smallest reachability.
                let mut next = None;
                let mut best = f64::INFINITY;
                for (j, &r) in reach.iter().enumerate() {
                    if !visited[j] && r < best {
                        best = r;
                        next = Some(j);
                    }
                }
                match next {
                    Some(j) => {
                        current = j;
                        current_reach = best;
                    }
                    None => break, // remaining objects unreachable: new sweep
                }
            }
        }

        let (labels, threshold, clusters) = extract_flat(&ordering, &reach_in_order, k, n);
        Ok(FopticsResult {
            clustering: Clustering::new(labels, clusters),
            ordering,
            reachability: reach_in_order,
            threshold,
        })
    }
}

/// Cuts the reachability plot at a threshold chosen (by search over the
/// distinct reachability values) so that the number of resulting clusters is
/// as close to `k` as possible, preferring exact matches.
fn extract_flat(ordering: &[usize], reach: &[f64], k: usize, n: usize) -> (Vec<usize>, f64, usize) {
    let mut candidates: Vec<f64> = reach.iter().copied().filter(|r| r.is_finite()).collect();
    candidates.sort_by(f64::total_cmp);
    candidates.dedup();
    candidates.push(f64::INFINITY);

    let clusters_at = |t: f64| -> usize {
        // A new cluster starts wherever reachability exceeds the threshold.
        reach.iter().filter(|&&r| r > t).count()
    };

    // Pick the threshold whose cluster count is nearest to k (ties -> larger
    // threshold, i.e. coarser clustering).
    let mut best_t = f64::INFINITY;
    let mut best_gap = usize::MAX;
    for &t in &candidates {
        let c = clusters_at(t);
        let gap = c.abs_diff(k);
        if gap < best_gap || (gap == best_gap && t > best_t) {
            best_gap = gap;
            best_t = t;
        }
        if gap == 0 {
            break;
        }
    }

    let mut labels = vec![0usize; n];
    let mut cluster = 0usize;
    for (pos, &obj) in ordering.iter().enumerate() {
        if reach[pos] > best_t && pos > 0 {
            cluster += 1;
        }
        labels[obj] = cluster;
    }
    (labels, best_t, cluster + 1)
}

impl UncertainClusterer for Foptics {
    fn name(&self) -> &'static str {
        "FOPT"
    }

    fn cluster(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Clustering, ClusterError> {
        Ok(self.run(data, k, rng)?.clustering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ucpc_uncertain::UnivariatePdf;

    fn blobs(centers: &[f64]) -> Vec<UncertainObject> {
        let mut data = Vec::new();
        for &c in centers {
            for i in 0..8 {
                data.push(UncertainObject::new(vec![
                    UnivariatePdf::normal(c + (i % 4) as f64 * 0.2, 0.1),
                    UnivariatePdf::normal(c + (i / 4) as f64 * 0.2, 0.1),
                ]));
            }
        }
        data
    }

    #[test]
    fn ordering_is_a_permutation() {
        let data = blobs(&[0.0, 30.0]);
        let mut rng = StdRng::seed_from_u64(50);
        let r = Foptics::default().run(&data, 2, &mut rng).unwrap();
        let mut sorted = r.ordering.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..data.len()).collect::<Vec<_>>());
    }

    #[test]
    fn recovers_two_blobs() {
        let data = blobs(&[0.0, 30.0]);
        let mut rng = StdRng::seed_from_u64(51);
        let r = Foptics::default().run(&data, 2, &mut rng).unwrap();
        let l = r.clustering.labels();
        assert!(l[..8].iter().all(|&x| x == l[0]), "{l:?}");
        assert!(l[8..].iter().all(|&x| x == l[8]), "{l:?}");
        assert_ne!(l[0], l[8]);
    }

    #[test]
    fn recovers_three_blobs() {
        let data = blobs(&[0.0, 30.0, 60.0]);
        let mut rng = StdRng::seed_from_u64(52);
        let r = Foptics::default().run(&data, 3, &mut rng).unwrap();
        assert_eq!(r.clustering.compact().k(), 3);
    }

    #[test]
    fn reachability_within_blob_is_below_between_blob_jump() {
        let data = blobs(&[0.0, 30.0]);
        let mut rng = StdRng::seed_from_u64(53);
        let r = Foptics::default().run(&data, 2, &mut rng).unwrap();
        let finite: Vec<f64> = r
            .reachability
            .iter()
            .copied()
            .filter(|x| x.is_finite())
            .collect();
        let max = finite.iter().copied().fold(0.0, f64::max);
        let median = {
            let mut s = finite.clone();
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        };
        assert!(
            max > 5.0 * median,
            "between-blob reachability spike missing (max {max}, median {median})"
        );
    }
}
