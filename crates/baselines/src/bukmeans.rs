//! Basic UK-means (Chau, Cheng, Kao & Ng \[4\]) — the original,
//! sample-approximated formulation ("bUKM" in the paper's figures).
//!
//! Assignment computes the expected distance `ED_d(o, c)` between every
//! object and every candidate centroid by averaging the metric over `S`
//! precomputed realizations of the object's pdf — the integral-approximation
//! bottleneck the paper describes, giving `O(I S k n m)` online complexity.
//! Centroids are updated as the average of member expected values (Eq. 7).
//!
//! With the squared Euclidean metric and `S → ∞` this converges to the same
//! assignments as the fast UK-means (Eq. 8); the test-suite checks that
//! agreement. The paper's pruning baselines (MinMax-BB, VDBiP) accelerate
//! exactly this algorithm.

use rand::RngCore;
use ucpc_core::framework::{validate_input, ClusterError, Clustering, UncertainClusterer};
use ucpc_core::init::Initializer;
use ucpc_uncertain::distance::{expected_distance_sampled, Metric};
use ucpc_uncertain::sampling::SampleCache;
use ucpc_uncertain::{MomentArena, UncertainObject};

/// Configuration of the basic (sample-based) UK-means.
#[derive(Debug, Clone)]
pub struct BasicUkMeans {
    /// Initialization strategy.
    pub init: Initializer,
    /// Cap on Lloyd iterations.
    pub max_iters: usize,
    /// Samples per object (`S` in the complexity `O(I S k n m)`).
    pub samples_per_object: usize,
    /// Metric for the expected distance (the paper's experiments use the
    /// squared Euclidean norm; Euclidean exercises the no-closed-form path
    /// that motivates the pruning literature).
    pub metric: Metric,
}

impl Default for BasicUkMeans {
    fn default() -> Self {
        Self {
            init: Initializer::RandomPartition,
            max_iters: 100,
            samples_per_object: 64,
            metric: Metric::SquaredEuclidean,
        }
    }
}

/// Outcome of a basic UK-means run.
#[derive(Debug, Clone)]
pub struct BasicUkMeansResult {
    /// Final partition.
    pub clustering: Clustering,
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Final objective `Σ_o ED_d(o, c_o)` (sample estimate).
    pub objective: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Total number of expected-distance evaluations performed (the cost the
    /// pruning baselines reduce).
    pub ed_evaluations: usize,
    /// Whether assignments stabilized before the cap.
    pub converged: bool,
}

impl BasicUkMeans {
    /// Runs the basic UK-means on `data` with `k` clusters.
    pub fn run(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<BasicUkMeansResult, ClusterError> {
        let m = validate_input(data, k)?;
        let labels = self.init.initial_partition(data, k, rng);
        let cache = SampleCache::build(data, self.samples_per_object, rng);
        self.run_from(data, k, m, labels, &cache)
    }

    /// Runs from a given initial partition and sample cache (used by tests
    /// and by the pruning baselines for apples-to-apples comparisons).
    pub fn run_from(
        &self,
        data: &[UncertainObject],
        k: usize,
        m: usize,
        mut labels: Vec<usize>,
        cache: &SampleCache,
    ) -> Result<BasicUkMeansResult, ClusterError> {
        assert_eq!(cache.len(), data.len(), "cache must cover the dataset");
        let arena = MomentArena::from_objects(data);
        let mut centroids = centroids_of(&arena, &labels, k, m);
        let mut iterations = 0usize;
        let mut ed_evaluations = 0usize;
        let mut converged = false;

        while iterations < self.max_iters {
            iterations += 1;
            let mut moved = false;
            for (i, label) in labels.iter_mut().enumerate() {
                let mut best = *label;
                let mut best_d = f64::INFINITY;
                for (c, cent) in centroids.iter().enumerate() {
                    let d = expected_distance_sampled(cache.of(i), cent, self.metric);
                    ed_evaluations += 1;
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if best != *label {
                    *label = best;
                    moved = true;
                }
            }
            if !moved {
                converged = true;
                break;
            }
            centroids = centroids_of(&arena, &labels, k, m);
        }

        let objective = (0..data.len())
            .map(|i| expected_distance_sampled(cache.of(i), &centroids[labels[i]], self.metric))
            .sum();

        Ok(BasicUkMeansResult {
            clustering: Clustering::new(labels, k),
            centroids,
            objective,
            iterations,
            ed_evaluations,
            converged,
        })
    }
}

/// Average of member expected values per cluster (Eq. 7), read from the
/// arena's contiguous `mu` rows; empty clusters keep their previous centroid
/// by re-seeding on the global mean.
pub(crate) fn centroids_of(
    arena: &MomentArena,
    labels: &[usize],
    k: usize,
    m: usize,
) -> Vec<Vec<f64>> {
    let mut sums = vec![vec![0.0; m]; k];
    let mut counts = vec![0usize; k];
    for (i, &l) in labels.iter().enumerate() {
        counts[l] += 1;
        for (s, &mu_j) in sums[l].iter_mut().zip(arena.mu_row(i)) {
            *s += mu_j;
        }
    }
    let global: Vec<f64> = {
        let inv = 1.0 / arena.len() as f64;
        let mut g = vec![0.0; m];
        for i in 0..arena.len() {
            for (gj, &mu_j) in g.iter_mut().zip(arena.mu_row(i)) {
                *gj += mu_j;
            }
        }
        for v in &mut g {
            *v *= inv;
        }
        g
    };
    for c in 0..k {
        if counts[c] > 0 {
            let inv = 1.0 / counts[c] as f64;
            for v in &mut sums[c] {
                *v *= inv;
            }
        } else {
            sums[c] = global.clone();
        }
    }
    sums
}

impl UncertainClusterer for BasicUkMeans {
    fn name(&self) -> &'static str {
        "bUKM"
    }

    fn cluster(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Clustering, ClusterError> {
        Ok(self.run(data, k, rng)?.clustering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ukmeans::UkMeans;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ucpc_uncertain::UnivariatePdf;

    fn blobs() -> Vec<UncertainObject> {
        let mut data = Vec::new();
        for c in [0.0, 30.0] {
            for i in 0..8 {
                data.push(UncertainObject::new(vec![
                    UnivariatePdf::normal(c + (i % 4) as f64 * 0.2, 0.5),
                    UnivariatePdf::normal(c, 0.5),
                ]));
            }
        }
        data
    }

    #[test]
    fn separates_blobs() {
        let data = blobs();
        let mut rng = StdRng::seed_from_u64(12);
        let r = BasicUkMeans::default().run(&data, 2, &mut rng).unwrap();
        assert!(r.converged);
        let l = r.clustering.labels();
        assert!(l[..8].iter().all(|&x| x == l[0]));
        assert!(l[8..].iter().all(|&x| x == l[8]));
        assert_ne!(l[0], l[8]);
    }

    #[test]
    fn agrees_with_fast_ukmeans_under_squared_euclidean() {
        // With enough samples the sampled ED ranks centroids like Eq. (8).
        let data = blobs();
        let labels: Vec<usize> = (0..data.len()).map(|i| i % 2).collect();
        let mut rng = StdRng::seed_from_u64(13);
        let cache = SampleCache::build(&data, 512, &mut rng);
        let basic = BasicUkMeans::default()
            .run_from(&data, 2, 2, labels.clone(), &cache)
            .unwrap();
        let fast = UkMeans::default()
            .run_with_labels(&data, 2, labels)
            .unwrap();
        assert_eq!(basic.clustering.labels(), fast.clustering.labels());
    }

    #[test]
    fn ed_evaluation_count_matches_complexity_model() {
        // Every iteration evaluates k expected distances per object.
        let data = blobs();
        let mut rng = StdRng::seed_from_u64(14);
        let r = BasicUkMeans::default().run(&data, 2, &mut rng).unwrap();
        assert_eq!(r.ed_evaluations, r.iterations * data.len() * 2);
    }

    #[test]
    fn euclidean_metric_also_clusters() {
        let data = blobs();
        let mut rng = StdRng::seed_from_u64(15);
        let cfg = BasicUkMeans {
            metric: Metric::Euclidean,
            ..Default::default()
        };
        let r = cfg.run(&data, 2, &mut rng).unwrap();
        let l = r.clustering.labels();
        assert_ne!(l[0], l[8]);
    }
}
