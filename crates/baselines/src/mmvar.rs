//! MMVar — minimizing the variance of cluster mixture models
//! (Gullo, Ponti & Tagarelli, ICDM 2010; Section 2.3 of the paper).
//!
//! The centroid of a cluster `C` is the mixture model `C_MM = (R_MM, f_MM)`
//! with `R_MM = ∪ R_o` and `f_MM = (1/|C|) Σ f_o`; the compactness criterion
//! is `J_MM(C) = sigma^2(C_MM)` (Eq. 11). By Lemma 2 the mixture's moments
//! are the averages of the members' moments, so `J_MM` is closed-form and the
//! algorithm is a local search over object relocations with O(m) move
//! evaluation — complexity `O(I k n m)`, like UCPC.
//!
//! Proposition 2 (`J_MM = J_UK/|C|`) is what the paper *proves about* this
//! algorithm; the test-suite checks it numerically on MMVar's own state.

use rand::RngCore;
use ucpc_core::framework::{validate_input, ClusterError, Clustering, UncertainClusterer};
use ucpc_core::init::Initializer;
use ucpc_core::objective::ClusterStats;
use ucpc_uncertain::{MomentArena, UncertainObject};

/// How MMVar searches for a minimum of `Σ_C σ²(C_MM)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MmVarStrategy {
    /// Lloyd-style alternation (default): assign every object to the mixture
    /// centroid minimizing `ÊD(o, C_MM)` (which by Lemma 3 is
    /// `||mu(o) − mu(C_MM)||² + σ²(o) + σ²(C_MM)` — variance-aware), then
    /// recompute mixtures; keep iterating while the variance objective
    /// decreases. This matches MMVar's published accuracy tier: the
    /// alternation cannot evaporate clusters.
    #[default]
    Lloyd,
    /// Greedy single-object relocation descent on `Σ_C σ²(C_MM)` directly.
    /// Faithful to the raw criterion but degenerate on overlapping data: the
    /// mixture variance is *intensive* in cluster size, so evaporating
    /// clusters into singletons is locally downhill and the search collapses
    /// toward one giant cluster. Kept for the ablation study.
    GreedyRelocation,
}

/// Configuration of the MMVar algorithm ("MMV" in the paper's tables).
#[derive(Debug, Clone)]
pub struct MmVar {
    /// Initial-partition strategy.
    pub init: Initializer,
    /// Safety cap on passes.
    pub max_iters: usize,
    /// Minimum objective decrease to continue/apply moves.
    pub tolerance: f64,
    /// Search strategy (see [`MmVarStrategy`]).
    pub strategy: MmVarStrategy,
}

impl Default for MmVar {
    fn default() -> Self {
        Self {
            init: Initializer::RandomPartition,
            max_iters: 200,
            tolerance: 1e-9,
            strategy: MmVarStrategy::Lloyd,
        }
    }
}

/// Outcome of an MMVar run.
#[derive(Debug, Clone)]
pub struct MmVarResult {
    /// Final partition.
    pub clustering: Clustering,
    /// Final objective `Σ_C J_MM(C)`.
    pub objective: f64,
    /// Relocation passes executed.
    pub iterations: usize,
    /// Total object relocations applied.
    pub relocations: usize,
    /// Whether the search reached a local minimum before the cap.
    pub converged: bool,
}

impl MmVar {
    /// Runs MMVar with the configured strategy.
    pub fn run(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<MmVarResult, ClusterError> {
        let m = validate_input(data, k)?;
        let labels = self.init.initial_partition(data, k, rng);
        match self.strategy {
            MmVarStrategy::Lloyd => self.run_lloyd(data, k, m, labels),
            MmVarStrategy::GreedyRelocation => self.run_greedy(data, k, m, labels),
        }
    }

    fn run_lloyd(
        &self,
        data: &[UncertainObject],
        k: usize,
        m: usize,
        mut labels: Vec<usize>,
    ) -> Result<MmVarResult, ClusterError> {
        let arena = MomentArena::from_objects(data);
        let mut stats: Vec<ClusterStats> = vec![ClusterStats::empty(m); k];
        for (i, &label) in labels.iter().enumerate() {
            stats[label].add_view(&arena.view(i));
        }

        let mut best_objective: f64 = stats.iter().map(ClusterStats::j_mm).sum();
        let mut iterations = 0usize;
        let mut relocations = 0usize;
        let mut converged = false;

        while iterations < self.max_iters {
            iterations += 1;

            // Mixture centroids of the current partition (Lemma 2): mean and
            // total variance per cluster; ÊD(o, C_MM) then needs only
            // ||mu(o) − mu_c||² + σ²(C_MM_c) (the σ²(o) term is constant
            // across candidates).
            let centroids: Vec<(Vec<f64>, f64)> = stats
                .iter()
                .map(|s| {
                    if s.is_empty() {
                        (vec![f64::INFINITY; m], f64::INFINITY)
                    } else {
                        let mix = s.mixture_moments();
                        (mix.mu().to_vec(), mix.total_variance())
                    }
                })
                .collect();

            // Assignment step over the arena's contiguous `mu` rows.
            let mut new_labels = Vec::with_capacity(data.len());
            let mut moved = 0usize;
            for (i, &label) in labels.iter().enumerate() {
                let mu_row = arena.mu_row(i);
                let mut best = label;
                let mut best_d = f64::INFINITY;
                for (c, (mu_c, var_c)) in centroids.iter().enumerate() {
                    if !var_c.is_finite() {
                        continue;
                    }
                    let d = ucpc_uncertain::distance::sq_euclidean(mu_row, mu_c) + var_c;
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if best != label {
                    moved += 1;
                }
                new_labels.push(best);
            }
            if moved == 0 {
                converged = true;
                break;
            }

            // Update step + acceptance on the variance objective.
            let mut new_stats: Vec<ClusterStats> = vec![ClusterStats::empty(m); k];
            for (i, &label) in new_labels.iter().enumerate() {
                new_stats[label].add_view(&arena.view(i));
            }
            let new_objective: f64 = new_stats.iter().map(ClusterStats::j_mm).sum();
            if new_objective >= best_objective - self.tolerance {
                // The variance criterion stopped improving: keep the previous
                // partition (the criterion, not raw assignment churn, drives
                // termination).
                converged = true;
                break;
            }
            best_objective = new_objective;
            relocations += moved;
            labels = new_labels;
            stats = new_stats;
        }

        Ok(MmVarResult {
            clustering: Clustering::new(labels, k),
            objective: best_objective,
            iterations,
            relocations,
            converged,
        })
    }

    fn run_greedy(
        &self,
        data: &[UncertainObject],
        k: usize,
        m: usize,
        mut labels: Vec<usize>,
    ) -> Result<MmVarResult, ClusterError> {
        let arena = MomentArena::from_objects(data);
        let mut stats: Vec<ClusterStats> = vec![ClusterStats::empty(m); k];
        for (i, &label) in labels.iter().enumerate() {
            stats[label].add_view(&arena.view(i));
        }

        let mut iterations = 0usize;
        let mut relocations = 0usize;
        let mut converged = false;

        while iterations < self.max_iters {
            iterations += 1;
            let mut moved = false;
            for (i, label) in labels.iter_mut().enumerate() {
                let src = *label;
                if stats[src].size() == 1 {
                    continue; // keep k clusters populated
                }
                let v = arena.view(i);
                let removal_gain = stats[src].delta_j_mm_remove(&v);
                let mut best: Option<(usize, f64)> = None;
                for (dst, stat) in stats.iter().enumerate() {
                    if dst == src {
                        continue;
                    }
                    let delta = removal_gain + stat.delta_j_mm_add(&v);
                    if best.is_none_or(|(_, bd)| delta < bd) {
                        best = Some((dst, delta));
                    }
                }
                if let Some((dst, delta)) = best {
                    if delta < -self.tolerance {
                        stats[src].remove_view(&v);
                        stats[dst].add_view(&v);
                        *label = dst;
                        relocations += 1;
                        moved = true;
                    }
                }
            }
            if !moved {
                converged = true;
                break;
            }
        }

        Ok(MmVarResult {
            clustering: Clustering::new(labels, k),
            objective: stats.iter().map(ClusterStats::j_mm).sum(),
            iterations,
            relocations,
            converged,
        })
    }
}

impl UncertainClusterer for MmVar {
    fn name(&self) -> &'static str {
        "MMV"
    }

    fn cluster(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Clustering, ClusterError> {
        Ok(self.run(data, k, rng)?.clustering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ucpc_uncertain::UnivariatePdf;

    fn blobs() -> Vec<UncertainObject> {
        let mut data = Vec::new();
        for c in [0.0, 40.0] {
            for i in 0..12 {
                data.push(UncertainObject::new(vec![
                    UnivariatePdf::normal(c + (i % 4) as f64 * 0.3, 0.4),
                    UnivariatePdf::normal(c, 0.4),
                ]));
            }
        }
        data
    }

    #[test]
    fn separates_blobs() {
        let data = blobs();
        let mut rng = StdRng::seed_from_u64(8);
        let r = MmVar::default().run(&data, 2, &mut rng).unwrap();
        assert!(r.converged);
        let l = r.clustering.labels();
        assert!(l[..12].iter().all(|&x| x == l[0]));
        assert!(l[12..].iter().all(|&x| x == l[12]));
        assert_ne!(l[0], l[12]);
    }

    #[test]
    fn objective_matches_mixture_variance() {
        // J_MM(C) is by definition the variance of the mixture centroid.
        let data = blobs();
        let mut rng = StdRng::seed_from_u64(9);
        let r = MmVar::default().run(&data, 3, &mut rng).unwrap();
        let direct: f64 = r
            .clustering
            .members()
            .iter()
            .filter(|ms| !ms.is_empty())
            .map(|ms| {
                ClusterStats::from_members(ms.iter().map(|&i| &data[i]))
                    .mixture_moments()
                    .total_variance()
            })
            .sum();
        assert!((r.objective - direct).abs() < 1e-9);
    }

    #[test]
    fn proposition_2_holds_on_final_clusters() {
        let data = blobs();
        let mut rng = StdRng::seed_from_u64(10);
        let r = MmVar::default().run(&data, 2, &mut rng).unwrap();
        for ms in r.clustering.members() {
            if ms.is_empty() {
                continue;
            }
            let stats = ClusterStats::from_members(ms.iter().map(|&i| &data[i]));
            assert!(
                (stats.j_mm() - stats.j_uk() / ms.len() as f64).abs() < 1e-9,
                "Proposition 2 violated"
            );
        }
    }

    #[test]
    fn greedy_strategy_keeps_k_clusters_nonempty() {
        let data = blobs();
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = MmVar {
            strategy: MmVarStrategy::GreedyRelocation,
            ..Default::default()
        };
        let r = cfg.run(&data, 6, &mut rng).unwrap();
        assert_eq!(r.clustering.non_empty(), 6);
    }

    #[test]
    fn lloyd_strategy_does_not_collapse_on_overlapping_data() {
        // Overlapping blobs: the greedy criterion evaporates clusters here;
        // the Lloyd alternation must keep a balanced partition.
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(12);
        let data: Vec<UncertainObject> = (0..60)
            .map(|_| {
                UncertainObject::new(vec![
                    UnivariatePdf::normal(rng.gen_range(0.0..4.0), 0.5),
                    UnivariatePdf::normal(rng.gen_range(0.0..4.0), 0.5),
                ])
            })
            .collect();
        let r = MmVar::default().run(&data, 4, &mut rng).unwrap();
        let max_cluster = r.clustering.sizes().into_iter().max().unwrap();
        assert!(
            max_cluster < 55,
            "Lloyd MMVar collapsed: sizes {:?}",
            r.clustering.sizes()
        );
    }

    #[test]
    fn lloyd_assignment_is_variance_aware() {
        // Two clusters with identical means but different mixture variances:
        // a point equidistant in mean-space joins the lower-variance one.
        let tight: Vec<UncertainObject> = (0..5)
            .map(|i| UncertainObject::new(vec![UnivariatePdf::normal(i as f64 * 0.01, 0.05)]))
            .collect();
        let loose: Vec<UncertainObject> = (0..5)
            .map(|i| UncertainObject::new(vec![UnivariatePdf::normal(10.0 + i as f64 * 0.01, 3.0)]))
            .collect();
        let probe = UncertainObject::new(vec![UnivariatePdf::normal(5.0, 0.1)]);
        let mut data = tight;
        data.extend(loose);
        data.push(probe);
        // Initialize with the probe in the loose cluster; Lloyd assignment
        // uses ||mu - mu_c||^2 + var_c — the probe is mean-equidistant, so
        // the variance term decides for the tight cluster.
        let s_tight = ClusterStats::from_members(data[..5].iter());
        let s_loose = ClusterStats::from_members(data[5..10].iter());
        let d_tight = ucpc_uncertain::distance::sq_euclidean(data[10].mu(), &s_tight.centroid())
            + s_tight.mixture_moments().total_variance();
        let d_loose = ucpc_uncertain::distance::sq_euclidean(data[10].mu(), &s_loose.centroid())
            + s_loose.mixture_moments().total_variance();
        assert!(d_tight < d_loose, "variance term must break the mean tie");
    }
}
