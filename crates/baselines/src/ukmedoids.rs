//! UK-medoids (Gullo, Ponti & Tagarelli, SUM 2008) — "UKmed" in the paper.
//!
//! A K-medoids (PAM-style) scheme over uncertain objects: cluster prototypes
//! are actual dataset objects and proximity is the pairwise expected squared
//! distance `ÊD` (Eq. 13), for which Lemma 3 supplies a closed form. The full
//! pairwise `ÊD` matrix is precomputed offline — the paper excludes this
//! offline stage from its timing comparisons, and [`UkMedoidsResult`] exposes
//! the split so the Figure-4 harness can do the same.

use rand::seq::SliceRandom;
use rand::RngCore;
use ucpc_core::framework::{validate_input, ClusterError, Clustering, UncertainClusterer};
use ucpc_uncertain::distance::expected_sq_distance;
use ucpc_uncertain::UncertainObject;

/// Configuration of UK-medoids.
#[derive(Debug, Clone)]
pub struct UkMedoids {
    /// Cap on assignment/update rounds.
    pub max_iters: usize,
}

impl Default for UkMedoids {
    fn default() -> Self {
        Self { max_iters: 100 }
    }
}

/// A precomputed pairwise expected-distance matrix (the offline phase).
#[derive(Debug, Clone)]
pub struct PairwiseEd {
    n: usize,
    d: Vec<f64>,
}

impl PairwiseEd {
    /// Computes all `ÊD(o_i, o_j)` via Lemma 3 (O(n² m), no sampling).
    pub fn compute(data: &[UncertainObject]) -> Self {
        let n = data.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = expected_sq_distance(&data[i], &data[j]);
                d[i * n + j] = v;
                d[j * n + i] = v;
            }
            // ÊD(o, o) = 2 sigma^2(o) (Eq. 13 is not a metric); the medoid
            // update must include the self term for correctness.
            d[i * n + i] = 2.0 * data[i].total_variance();
        }
        Self { n, d }
    }

    /// Number of objects covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `ÊD(o_i, o_j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.d[i * self.n + j]
    }
}

/// Outcome of a UK-medoids run.
#[derive(Debug, Clone)]
pub struct UkMedoidsResult {
    /// Final partition.
    pub clustering: Clustering,
    /// Indices of the final medoid objects.
    pub medoids: Vec<usize>,
    /// Final objective `Σ_o ÊD(o, medoid(o))`.
    pub objective: f64,
    /// Rounds executed.
    pub iterations: usize,
    /// Whether medoids stabilized before the cap.
    pub converged: bool,
}

impl UkMedoids {
    /// Runs UK-medoids, computing the pairwise matrix internally.
    pub fn run(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<UkMedoidsResult, ClusterError> {
        validate_input(data, k)?;
        let ed = PairwiseEd::compute(data);
        self.run_with_matrix(data.len(), k, &ed, rng)
    }

    /// Runs UK-medoids against a precomputed matrix (the paper's protocol:
    /// matrix construction is the untimed offline phase).
    pub fn run_with_matrix(
        &self,
        n: usize,
        k: usize,
        ed: &PairwiseEd,
        rng: &mut dyn RngCore,
    ) -> Result<UkMedoidsResult, ClusterError> {
        if n == 0 {
            return Err(ClusterError::EmptyDataset);
        }
        if k == 0 || k > n {
            return Err(ClusterError::InvalidK { k, n });
        }
        assert_eq!(ed.len(), n, "matrix must cover the dataset");

        // Initial medoids: k distinct random objects.
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(rng);
        let mut medoids: Vec<usize> = idx[..k].to_vec();

        let mut labels = vec![0usize; n];
        let mut iterations = 0usize;
        let mut converged = false;

        while iterations < self.max_iters {
            iterations += 1;

            // Assignment: nearest medoid by ÊD.
            for (i, l) in labels.iter_mut().enumerate() {
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for (c, &mi) in medoids.iter().enumerate() {
                    let d = ed.get(i, mi);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                *l = best;
            }

            // Update: medoid = member minimizing total ÊD to its cluster.
            let mut changed = false;
            for (c, medoid) in medoids.iter_mut().enumerate() {
                let members: Vec<usize> = (0..n).filter(|&i| labels[i] == c).collect();
                if members.is_empty() {
                    continue;
                }
                let mut best = *medoid;
                let mut best_cost = f64::INFINITY;
                for &cand in &members {
                    let cost: f64 = members.iter().map(|&i| ed.get(i, cand)).sum();
                    if cost < best_cost {
                        best_cost = cost;
                        best = cand;
                    }
                }
                if best != *medoid {
                    *medoid = best;
                    changed = true;
                }
            }

            if !changed {
                converged = true;
                break;
            }
        }

        let objective = (0..n).map(|i| ed.get(i, medoids[labels[i]])).sum();
        Ok(UkMedoidsResult {
            clustering: Clustering::new(labels, k),
            medoids,
            objective,
            iterations,
            converged,
        })
    }
}

impl UncertainClusterer for UkMedoids {
    fn name(&self) -> &'static str {
        "UKmed"
    }

    fn cluster(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Clustering, ClusterError> {
        Ok(self.run(data, k, rng)?.clustering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ucpc_uncertain::UnivariatePdf;

    fn blobs() -> Vec<UncertainObject> {
        let mut data = Vec::new();
        for c in [0.0, 20.0] {
            for i in 0..7 {
                data.push(UncertainObject::new(vec![
                    UnivariatePdf::normal(c + (i % 3) as f64 * 0.2, 0.3),
                    UnivariatePdf::uniform_centered(c, 0.5),
                ]));
            }
        }
        data
    }

    #[test]
    fn separates_blobs() {
        let data = blobs();
        let mut rng = StdRng::seed_from_u64(30);
        let r = UkMedoids::default().run(&data, 2, &mut rng).unwrap();
        assert!(r.converged);
        let l = r.clustering.labels();
        assert!(l[..7].iter().all(|&x| x == l[0]));
        assert!(l[7..].iter().all(|&x| x == l[7]));
        assert_ne!(l[0], l[7]);
    }

    #[test]
    fn medoids_are_dataset_members_of_their_clusters() {
        let data = blobs();
        let mut rng = StdRng::seed_from_u64(31);
        let r = UkMedoids::default().run(&data, 2, &mut rng).unwrap();
        for (c, &mi) in r.medoids.iter().enumerate() {
            assert_eq!(
                r.clustering.label(mi),
                c,
                "medoid must belong to its cluster"
            );
        }
    }

    #[test]
    fn matrix_is_symmetric_with_lemma3_diagonal() {
        let data = blobs();
        let ed = PairwiseEd::compute(&data);
        for i in 0..data.len() {
            assert!(
                (ed.get(i, i) - 2.0 * data[i].total_variance()).abs() < 1e-12,
                "ÊD(o,o) = 2 sigma^2(o)"
            );
            for j in 0..data.len() {
                assert_eq!(ed.get(i, j), ed.get(j, i));
            }
        }
    }

    #[test]
    fn objective_is_consistent_with_matrix() {
        let data = blobs();
        let mut rng = StdRng::seed_from_u64(32);
        let ed = PairwiseEd::compute(&data);
        let r = UkMedoids::default()
            .run_with_matrix(data.len(), 3, &ed, &mut rng)
            .unwrap();
        let direct: f64 = (0..data.len())
            .map(|i| ed.get(i, r.medoids[r.clustering.label(i)]))
            .sum();
        assert!((r.objective - direct).abs() < 1e-9);
    }
}
