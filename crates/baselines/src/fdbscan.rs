//! FDBSCAN — fuzzy density-based clustering of uncertain data
//! (Kriegel & Pfeifle, KDD 2005) — "FDB" in the paper's tables.
//!
//! DBSCAN lifted to uncertain objects through *fuzzy distance functions*: the
//! crisp predicate `d(o, o') <= eps` becomes the probability
//! `P[d(o, o') <= eps]`, estimated from matched Monte Carlo sample pairs.
//! An object is a (fuzzy) core object when the *expected* number of objects
//! in its eps-neighborhood — the sum of those probabilities — reaches
//! `min_pts`, and `o'` is directly density-reachable from core `o` when
//! `P[d(o,o') <= eps]` reaches the reachability threshold.
//!
//! Density-based methods produce their own number of clusters plus noise; to
//! participate in the paper's fixed-`k` evaluation protocol, noise objects
//! are attached to the cluster of their nearest (by expected distance)
//! clustered neighbor, and the result reports the discovered cluster count.
//! `eps` is calibrated per dataset from a quantile of the pairwise expected
//! distances unless set explicitly.

use rand::RngCore;
use std::collections::VecDeque;
use ucpc_core::framework::{validate_input, ClusterError, Clustering, UncertainClusterer};
use ucpc_uncertain::distance::{distance_probability, expected_sq_distance};
use ucpc_uncertain::sampling::SampleCache;
use ucpc_uncertain::UncertainObject;

/// How the neighborhood radius `eps` is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EpsSelection {
    /// A fixed radius.
    Fixed(f64),
    /// The given quantile (in `(0,1)`) of the pairwise *expected Euclidean*
    /// distance distribution (sqrt of Lemma-3 values), computed per dataset.
    Quantile(f64),
}

/// Configuration of FDBSCAN.
#[derive(Debug, Clone)]
pub struct FdbScan {
    /// Neighborhood radius selection.
    pub eps: EpsSelection,
    /// Minimum expected neighborhood mass for a core object.
    pub min_pts: f64,
    /// Probability threshold for direct density-reachability.
    pub reachability_threshold: f64,
    /// Samples per object used to estimate distance probabilities.
    pub samples_per_object: usize,
}

impl Default for FdbScan {
    fn default() -> Self {
        Self {
            eps: EpsSelection::Quantile(0.08),
            min_pts: 4.0,
            reachability_threshold: 0.5,
            samples_per_object: 32,
        }
    }
}

/// Outcome of an FDBSCAN run.
#[derive(Debug, Clone)]
pub struct FdbScanResult {
    /// Final partition (noise attached to nearest clusters; see module docs).
    pub clustering: Clustering,
    /// Number of density clusters discovered before noise attachment.
    pub discovered_clusters: usize,
    /// Indices of objects originally labelled noise.
    pub noise: Vec<usize>,
    /// The radius actually used.
    pub eps: f64,
    /// Core-object flags.
    pub core: Vec<bool>,
}

impl FdbScan {
    /// Runs FDBSCAN. The `k` passed through [`UncertainClusterer::cluster`]
    /// is ignored (density methods choose their own cluster count), matching
    /// the paper's protocol of evaluating the produced clustering as-is.
    pub fn run(
        &self,
        data: &[UncertainObject],
        rng: &mut dyn RngCore,
    ) -> Result<FdbScanResult, ClusterError> {
        validate_input(data, 1)?;
        let n = data.len();
        let cache = SampleCache::build(data, self.samples_per_object, rng);
        let eps = self.resolve_eps(data);

        // Fuzzy neighborhood structure: probability-weighted neighbor lists.
        let mut prob = vec![0.0f64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let p = distance_probability(cache.of(i), cache.of(j), eps);
                prob[i * n + j] = p;
                prob[j * n + i] = p;
            }
            prob[i * n + i] = 1.0;
        }

        // Fuzzy core predicate: expected number of eps-neighbors >= min_pts.
        let core: Vec<bool> = (0..n)
            .map(|i| (0..n).map(|j| prob[i * n + j]).sum::<f64>() >= self.min_pts)
            .collect();

        // Expansion (standard DBSCAN over the fuzzy-reachability graph).
        const UNVISITED: usize = usize::MAX;
        let mut labels = vec![UNVISITED; n];
        let mut next_cluster = 0usize;
        for start in 0..n {
            if labels[start] != UNVISITED || !core[start] {
                continue;
            }
            let cluster = next_cluster;
            next_cluster += 1;
            let mut queue = VecDeque::from([start]);
            labels[start] = cluster;
            while let Some(i) = queue.pop_front() {
                if !core[i] {
                    continue; // border objects do not expand
                }
                for j in 0..n {
                    if labels[j] == UNVISITED && prob[i * n + j] >= self.reachability_threshold {
                        labels[j] = cluster;
                        queue.push_back(j);
                    }
                }
            }
        }

        // Noise handling for the fixed-k evaluation protocol.
        let noise: Vec<usize> = (0..n).filter(|&i| labels[i] == UNVISITED).collect();
        if next_cluster == 0 {
            // Degenerate: nothing dense enough; fall back to one cluster.
            return Ok(FdbScanResult {
                clustering: Clustering::single(n),
                discovered_clusters: 0,
                noise,
                eps,
                core,
            });
        }
        for &i in &noise {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for j in 0..n {
                if labels[j] == UNVISITED || j == i {
                    continue;
                }
                let d = expected_sq_distance(&data[i], &data[j]);
                if d < best_d {
                    best_d = d;
                    best = labels[j];
                }
            }
            labels[i] = best;
        }

        Ok(FdbScanResult {
            clustering: Clustering::new(labels, next_cluster),
            discovered_clusters: next_cluster,
            noise,
            eps,
            core,
        })
    }

    fn resolve_eps(&self, data: &[UncertainObject]) -> f64 {
        match self.eps {
            EpsSelection::Fixed(e) => e,
            EpsSelection::Quantile(q) => {
                assert!((0.0..1.0).contains(&q), "quantile must be in (0,1)");
                let n = data.len();
                let mut dists = Vec::with_capacity(n * (n - 1) / 2);
                for i in 0..n {
                    for j in (i + 1)..n {
                        dists.push(expected_sq_distance(&data[i], &data[j]).sqrt());
                    }
                }
                if dists.is_empty() {
                    return 1.0;
                }
                dists.sort_by(f64::total_cmp);
                let idx = ((dists.len() - 1) as f64 * q).round() as usize;
                dists[idx].max(f64::MIN_POSITIVE)
            }
        }
    }
}

impl UncertainClusterer for FdbScan {
    fn name(&self) -> &'static str {
        "FDB"
    }

    fn cluster(
        &self,
        data: &[UncertainObject],
        _k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Clustering, ClusterError> {
        Ok(self.run(data, rng)?.clustering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ucpc_uncertain::UnivariatePdf;

    fn blobs() -> Vec<UncertainObject> {
        let mut data = Vec::new();
        for c in [0.0, 50.0] {
            for i in 0..10 {
                data.push(UncertainObject::new(vec![
                    UnivariatePdf::normal(c + (i % 5) as f64 * 0.3, 0.1),
                    UnivariatePdf::normal(c + (i / 5) as f64 * 0.3, 0.1),
                ]));
            }
        }
        data
    }

    #[test]
    fn finds_two_dense_blobs() {
        let data = blobs();
        let mut rng = StdRng::seed_from_u64(40);
        let cfg = FdbScan {
            eps: EpsSelection::Fixed(3.0),
            ..Default::default()
        };
        let r = cfg.run(&data, &mut rng).unwrap();
        assert_eq!(r.discovered_clusters, 2, "eps {} cores {:?}", r.eps, r.core);
        let l = r.clustering.labels();
        assert!(l[..10].iter().all(|&x| x == l[0]));
        assert!(l[10..].iter().all(|&x| x == l[10]));
        assert_ne!(l[0], l[10]);
    }

    #[test]
    fn far_outlier_is_noise_then_attached() {
        let mut data = blobs();
        data.push(UncertainObject::new(vec![
            UnivariatePdf::normal(500.0, 0.1),
            UnivariatePdf::normal(500.0, 0.1),
        ]));
        let mut rng = StdRng::seed_from_u64(41);
        let cfg = FdbScan {
            eps: EpsSelection::Fixed(3.0),
            ..Default::default()
        };
        let r = cfg.run(&data, &mut rng).unwrap();
        assert!(r.noise.contains(&20), "outlier should be noise");
        // ...but still carries a label for the fixed-k protocol.
        assert!(r.clustering.label(20) < r.clustering.k());
    }

    #[test]
    fn quantile_eps_is_positive_and_data_driven() {
        let data = blobs();
        let cfg = FdbScan::default();
        let eps = cfg.resolve_eps(&data);
        assert!(eps > 0.0 && eps.is_finite());
    }

    #[test]
    fn degenerate_no_core_objects_gives_single_cluster() {
        // Huge min_pts: nothing is core.
        let data = blobs();
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = FdbScan {
            min_pts: 1_000.0,
            eps: EpsSelection::Fixed(0.5),
            ..Default::default()
        };
        let r = cfg.run(&data, &mut rng).unwrap();
        assert_eq!(r.discovered_clusters, 0);
        assert_eq!(r.clustering.k(), 1);
    }

    #[test]
    fn high_uncertainty_blurs_core_detection() {
        // Same means as `blobs` but large variances: with the same eps the
        // distance probabilities drop, demonstrating that FDBSCAN actually
        // consumes the uncertainty (not just expected values).
        let tight = blobs();
        let loose: Vec<UncertainObject> = tight
            .iter()
            .map(|o| {
                UncertainObject::new(
                    o.mu()
                        .iter()
                        .map(|&m| UnivariatePdf::normal(m, 5.0))
                        .collect(),
                )
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(43);
        let cfg = FdbScan {
            eps: EpsSelection::Fixed(3.0),
            ..Default::default()
        };
        let rt = cfg.run(&tight, &mut rng).unwrap();
        let rl = cfg.run(&loose, &mut rng).unwrap();
        let cores_tight = rt.core.iter().filter(|&&c| c).count();
        let cores_loose = rl.core.iter().filter(|&&c| c).count();
        assert!(
            cores_loose < cores_tight,
            "uncertainty should reduce core count ({cores_loose} vs {cores_tight})"
        );
    }
}
