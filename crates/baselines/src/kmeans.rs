//! Deterministic K-means (Lloyd's algorithm).
//!
//! Not an uncertain-data algorithm itself, but the substrate the UK-means
//! family reduces to: the fast UK-means of Lee et al. \[14\] is *exactly*
//! K-means over the objects' expected values (Eq. 8), and Case-1 evaluation
//! (deterministic perturbed data) runs every uncertain algorithm on
//! point-mass objects where they all degenerate to this.

use rand::RngCore;
use ucpc_core::framework::{validate_input, ClusterError, Clustering, UncertainClusterer};
use ucpc_core::init::Initializer;
use ucpc_uncertain::distance::sq_euclidean;
use ucpc_uncertain::{MomentArena, UncertainObject};

/// Lloyd's K-means over the expected values of the input objects.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Initialization strategy.
    pub init: Initializer,
    /// Cap on Lloyd iterations.
    pub max_iters: usize,
}

impl Default for KMeans {
    fn default() -> Self {
        Self {
            init: Initializer::RandomPartition,
            max_iters: 200,
        }
    }
}

/// Outcome of a K-means run over expected values.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final partition.
    pub clustering: Clustering,
    /// Final centroids (mean of member expected values).
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of expected values to their centroid.
    pub sse: f64,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
    /// Whether assignments stabilized before `max_iters`.
    pub converged: bool,
}

impl KMeans {
    /// Runs Lloyd's algorithm on the expected values of `data`.
    pub fn run(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<KMeansResult, ClusterError> {
        let m = validate_input(data, k)?;
        let labels = self.init.initial_partition(data, k, rng);
        self.run_with_labels(data, k, m, labels)
    }

    /// Runs Lloyd's algorithm from a given initial partition.
    pub(crate) fn run_with_labels(
        &self,
        data: &[UncertainObject],
        k: usize,
        m: usize,
        labels: Vec<usize>,
    ) -> Result<KMeansResult, ClusterError> {
        self.run_on_arena(&MomentArena::from_objects(data), k, m, labels)
    }

    /// Runs Lloyd's algorithm over the contiguous `mu` rows of a prebuilt
    /// arena (shared with the fast UK-means, which wraps this).
    pub(crate) fn run_on_arena(
        &self,
        arena: &MomentArena,
        k: usize,
        m: usize,
        mut labels: Vec<usize>,
    ) -> Result<KMeansResult, ClusterError> {
        let mut centroids = mean_centroids(arena, &labels, k, m);
        let mut converged = false;
        let mut iterations = 0usize;

        while iterations < self.max_iters {
            iterations += 1;
            let mut moved = false;
            for (i, label) in labels.iter_mut().enumerate() {
                let p = arena.mu_row(i);
                let mut best = *label;
                let mut best_d = sq_euclidean(p, &centroids[*label]);
                for (c, cent) in centroids.iter().enumerate() {
                    let d = sq_euclidean(p, cent);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if best != *label {
                    *label = best;
                    moved = true;
                }
            }
            if !moved {
                converged = true;
                break;
            }
            centroids = mean_centroids(arena, &labels, k, m);
        }

        let sse = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| sq_euclidean(arena.mu_row(i), &centroids[l]))
            .sum();
        Ok(KMeansResult {
            clustering: Clustering::new(labels, k),
            centroids,
            sse,
            iterations,
            converged,
        })
    }
}

/// Mean of each cluster's `mu` rows; empty clusters keep their previous role
/// by being re-seeded on the farthest point from its centroid-less mass
/// (here: first point, which the Lloyd loop immediately corrects).
fn mean_centroids(arena: &MomentArena, labels: &[usize], k: usize, m: usize) -> Vec<Vec<f64>> {
    let mut sums = vec![vec![0.0; m]; k];
    let mut counts = vec![0usize; k];
    for (i, &l) in labels.iter().enumerate() {
        counts[l] += 1;
        let row = arena.mu_row(i);
        for j in 0..m {
            sums[l][j] += row[j];
        }
    }
    for c in 0..k {
        if counts[c] > 0 {
            let inv = 1.0 / counts[c] as f64;
            for v in &mut sums[c] {
                *v *= inv;
            }
        } else {
            // Re-seed an empty cluster on the point farthest from its
            // assigned centroid, which breaks ties deterministically.
            let far = (0..arena.len())
                .max_by(|&a, &b| {
                    let da = sq_euclidean(arena.mu_row(a), &sums[labels[0]]);
                    let db = sq_euclidean(arena.mu_row(b), &sums[labels[0]]);
                    da.total_cmp(&db)
                })
                .unwrap_or(0);
            sums[c] = arena.mu_row(far).to_vec();
        }
    }
    sums
}

impl UncertainClusterer for KMeans {
    fn name(&self) -> &'static str {
        "KM"
    }

    fn cluster(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Clustering, ClusterError> {
        Ok(self.run(data, k, rng)?.clustering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs() -> Vec<UncertainObject> {
        let mut data = Vec::new();
        for c in [0.0, 100.0] {
            for i in 0..8 {
                data.push(UncertainObject::deterministic(&[
                    c + (i % 4) as f64 * 0.1,
                    c,
                ]));
            }
        }
        data
    }

    #[test]
    fn separates_two_blobs() {
        let data = blobs();
        let mut rng = StdRng::seed_from_u64(1);
        let r = KMeans::default().run(&data, 2, &mut rng).unwrap();
        assert!(r.converged);
        let l = r.clustering.labels();
        assert!(l[..8].iter().all(|&x| x == l[0]));
        assert!(l[8..].iter().all(|&x| x == l[8]));
        assert_ne!(l[0], l[8]);
        assert!(r.sse < 1.0);
    }

    #[test]
    fn centroids_are_cluster_means() {
        let data = blobs();
        let mut rng = StdRng::seed_from_u64(2);
        let r = KMeans::default().run(&data, 2, &mut rng).unwrap();
        for (c, members) in r.clustering.members().iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let mean0: f64 =
                members.iter().map(|&i| data[i].mu()[0]).sum::<f64>() / members.len() as f64;
            assert!((r.centroids[c][0] - mean0).abs() < 1e-9);
        }
    }

    #[test]
    fn k_equals_n_gives_zero_sse() {
        let data: Vec<UncertainObject> = (0..4)
            .map(|i| UncertainObject::deterministic(&[i as f64 * 10.0]))
            .collect();
        let mut rng = StdRng::seed_from_u64(3);
        let r = KMeans::default().run(&data, 4, &mut rng).unwrap();
        assert!(r.sse < 1e-12);
    }
}
