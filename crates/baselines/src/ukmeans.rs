//! UK-means — the fast variant of Lee, Kao & Cheng \[14\] (Section 2.2).
//!
//! Eq. (8) splits the expected squared distance between an object and a
//! deterministic centroid into a per-object constant plus an ordinary
//! point-to-point squared distance:
//!
//! `ED(o, c) = ED(o, mu(o)) + ||c − mu(o)||^2 = sigma^2(o) + ||c − mu(o)||^2`.
//!
//! The constant is precomputed once in an offline phase (here:
//! [`UncertainObject::total_variance`], already precomputed at object
//! construction), so the online phase is exactly Lloyd's K-means on expected
//! values — `O(I k n m)` with no integral approximation.

use crate::kmeans::KMeans;
use rand::RngCore;
use ucpc_core::framework::{
    validate_input, validate_labels, ClusterError, Clustering, UncertainClusterer,
};
use ucpc_core::init::Initializer;
use ucpc_core::objective::ClusterStats;
use ucpc_uncertain::{MomentArena, UncertainObject};

/// The fast UK-means algorithm ("UKM" in the paper's tables).
#[derive(Debug, Clone)]
pub struct UkMeans {
    /// Initialization strategy.
    pub init: Initializer,
    /// Cap on Lloyd iterations.
    pub max_iters: usize,
}

impl Default for UkMeans {
    fn default() -> Self {
        Self {
            init: Initializer::RandomPartition,
            max_iters: 200,
        }
    }
}

/// Outcome of a UK-means run.
#[derive(Debug, Clone)]
pub struct UkMeansResult {
    /// Final partition.
    pub clustering: Clustering,
    /// Final cluster centroids `C_UK` (Eq. 7).
    pub centroids: Vec<Vec<f64>>,
    /// Final objective `Σ_C J_UK(C)` (Eq. 9), including the per-object
    /// constant terms of Eq. (8).
    pub objective: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Whether assignments stabilized before the iteration cap.
    pub converged: bool,
}

impl UkMeans {
    /// Runs UK-means on `data` with `k` clusters.
    pub fn run(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<UkMeansResult, ClusterError> {
        let m = validate_input(data, k)?;
        let labels = self.init.initial_partition(data, k, rng);
        self.run_from(data, k, m, labels)
    }

    /// Runs UK-means from a caller-supplied initial partition.
    pub fn run_with_labels(
        &self,
        data: &[UncertainObject],
        k: usize,
        labels: Vec<usize>,
    ) -> Result<UkMeansResult, ClusterError> {
        let m = validate_input(data, k)?;
        validate_labels(&labels, data.len(), k)?;
        self.run_from(data, k, m, labels)
    }

    fn run_from(
        &self,
        data: &[UncertainObject],
        k: usize,
        m: usize,
        labels: Vec<usize>,
    ) -> Result<UkMeansResult, ClusterError> {
        // One arena shared by the Lloyd loop and the objective evaluation.
        let arena = MomentArena::from_objects(data);

        // Online phase: K-means over expected values (Eq. 8 reduction).
        let inner = KMeans {
            init: self.init,
            max_iters: self.max_iters,
        };
        let km = inner.run_on_arena(&arena, k, m, labels)?;

        // J_UK per cluster via the Lemma-1 closed form in scalar aggregates
        // (equals the SSE over expected values plus the per-object variance
        // constants).
        let mut stats = vec![ClusterStats::empty(m); k];
        for (i, &label) in km.clustering.labels().iter().enumerate() {
            stats[label].add_view(&arena.view(i));
        }
        let objective = stats.iter().map(ClusterStats::j_uk).sum();

        Ok(UkMeansResult {
            clustering: km.clustering,
            centroids: km.centroids,
            objective,
            iterations: km.iterations,
            converged: km.converged,
        })
    }
}

impl UncertainClusterer for UkMeans {
    fn name(&self) -> &'static str {
        "UKM"
    }

    fn cluster(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Clustering, ClusterError> {
        Ok(self.run(data, k, rng)?.clustering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ucpc_uncertain::distance::expected_sq_distance_to_point;
    use ucpc_uncertain::UnivariatePdf;

    fn uncertain_blobs() -> Vec<UncertainObject> {
        let mut data = Vec::new();
        for c in [0.0, 50.0] {
            for i in 0..10 {
                data.push(UncertainObject::new(vec![
                    UnivariatePdf::normal(c + (i % 5) as f64 * 0.2, 0.5),
                    UnivariatePdf::uniform_centered(c, 1.0),
                ]));
            }
        }
        data
    }

    #[test]
    fn separates_blobs_of_uncertain_objects() {
        let data = uncertain_blobs();
        let mut rng = StdRng::seed_from_u64(4);
        let r = UkMeans::default().run(&data, 2, &mut rng).unwrap();
        let l = r.clustering.labels();
        assert!(l[..10].iter().all(|&x| x == l[0]));
        assert!(l[10..].iter().all(|&x| x == l[10]));
        assert_ne!(l[0], l[10]);
    }

    #[test]
    fn objective_equals_sum_of_expected_distances() {
        // J_UK(C) = Σ_o ED(o, C_UK) with ED per Eq. (8).
        let data = uncertain_blobs();
        let mut rng = StdRng::seed_from_u64(5);
        let r = UkMeans::default().run(&data, 3, &mut rng).unwrap();
        let mut direct = 0.0;
        for (i, o) in data.iter().enumerate() {
            direct += expected_sq_distance_to_point(o, &r.centroids[r.clustering.label(i)]);
        }
        assert!(
            (r.objective - direct).abs() < 1e-6,
            "closed form {} vs direct {direct}",
            r.objective
        );
    }

    #[test]
    fn ignores_variance_in_assignment() {
        // Two objects with identical means but wildly different variances
        // are indistinguishable to UK-means (Proposition 1's shortcoming):
        // they must always land in the same cluster as their mean-twin.
        let data = vec![
            UncertainObject::new(vec![UnivariatePdf::normal(0.0, 0.01)]),
            UncertainObject::new(vec![UnivariatePdf::normal(0.0, 10.0)]),
            UncertainObject::new(vec![UnivariatePdf::normal(100.0, 0.01)]),
            UncertainObject::new(vec![UnivariatePdf::normal(100.0, 10.0)]),
        ];
        let mut rng = StdRng::seed_from_u64(6);
        // k-means++ seeding: the mean-twins are at distance zero from each
        // other, so the two D²-weighted seeds always land in different mean
        // groups regardless of the RNG stream — the assignment step alone
        // decides, which is exactly the property under test.
        let alg = UkMeans {
            init: Initializer::KMeansPlusPlus,
            ..UkMeans::default()
        };
        let r = alg.run(&data, 2, &mut rng).unwrap();
        assert_eq!(r.clustering.label(0), r.clustering.label(1));
        assert_eq!(r.clustering.label(2), r.clustering.label(3));
    }

    #[test]
    fn matches_kmeans_on_point_masses() {
        let points: Vec<UncertainObject> = [0.0, 1.0, 2.0, 30.0, 31.0, 32.0]
            .iter()
            .map(|&x| UncertainObject::deterministic(&[x]))
            .collect();
        let labels = vec![0, 1, 0, 1, 0, 1];
        let uk = UkMeans::default()
            .run_with_labels(&points, 2, labels.clone())
            .unwrap();
        let km = KMeans::default()
            .run_with_labels(&points, 2, 1, labels)
            .unwrap();
        assert_eq!(uk.clustering.labels(), km.clustering.labels());
        assert!(
            (uk.objective - km.sse).abs() < 1e-9,
            "zero-variance: J_UK = SSE"
        );
    }
}
