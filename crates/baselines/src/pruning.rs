//! Pruning-based UK-means variants: MinMax-BB (Ngai et al. \[16\]) and VDBiP
//! (Kao et al. \[11\]), both optionally tightened with the cluster-shift
//! technique (Ngai et al. \[17\]) — Section 2.2 and Figure 4 of the paper.
//!
//! Both algorithms accelerate the *basic* UK-means: they avoid computing the
//! sample-approximated expected distance `ED_d(o, c)` for candidate centroids
//! that provably cannot be the nearest one.
//!
//! * **MinMax-BB** bounds `ED_d(o, c)` by the minimum and maximum distance
//!   between `o`'s bounding box (its domain region) and `c`; a candidate
//!   whose lower bound exceeds the smallest upper bound is pruned.
//! * **VDBiP** adds bisector pruning: if `o`'s bounding box lies entirely on
//!   centroid `a`'s side of the perpendicular bisector of `(a, b)`, then `b`
//!   can never be closer than `a` and is pruned. When a single candidate
//!   survives, no expected distance needs to be computed at all.
//! * **Cluster-shift** reuses expected distances computed in earlier
//!   iterations: `|ED_d(o, c_new) − ED_d(o, c_old)| ≤ d(c_old, c_new)` for a
//!   metric `d` (triangle inequality under the expectation), so previously
//!   exact values widen into bounds instead of being discarded.
//!
//! As in the paper's evaluation protocol, the harness times only the
//! clustering phase; the cost of building the sample cache and the pruning
//! bookkeeping structures is kept out of the reported clustering time, and
//! [`PruningResult`] exposes pruning-effectiveness counters.

use crate::bukmeans::centroids_of;
use rand::RngCore;
use ucpc_core::framework::{validate_input, ClusterError, Clustering, UncertainClusterer};
use ucpc_core::init::Initializer;
use ucpc_uncertain::distance::{euclidean, expected_distance_sampled, Metric};
use ucpc_uncertain::sampling::SampleCache;
use ucpc_uncertain::UncertainObject;

/// Which pruning strategy drives candidate elimination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruningStrategy {
    /// Bounding-box min/max distance pruning \[16\].
    MinMaxBb,
    /// Voronoi-diagram bisector pruning on top of min/max bounds \[11\].
    VdBiP,
}

/// A pruning-accelerated basic UK-means run.
#[derive(Debug, Clone)]
pub struct PruningUkMeans {
    /// Pruning strategy ("MinMax-BB" or "VDBiP" in Figure 4).
    pub strategy: PruningStrategy,
    /// Initialization strategy.
    pub init: Initializer,
    /// Cap on Lloyd iterations.
    pub max_iters: usize,
    /// Samples per object for exact expected-distance evaluations.
    pub samples_per_object: usize,
    /// Whether to apply the cluster-shift bound-tightening technique \[17\]
    /// (the paper couples it with both pruners in its evaluation).
    pub cluster_shift: bool,
}

impl PruningUkMeans {
    /// MinMax-BB with cluster-shift, the paper's Figure-4 configuration.
    pub fn min_max_bb() -> Self {
        Self {
            strategy: PruningStrategy::MinMaxBb,
            init: Initializer::RandomPartition,
            max_iters: 100,
            samples_per_object: 64,
            cluster_shift: true,
        }
    }

    /// VDBiP with cluster-shift, the paper's Figure-4 configuration.
    pub fn vdbip() -> Self {
        Self {
            strategy: PruningStrategy::VdBiP,
            ..Self::min_max_bb()
        }
    }
}

/// Outcome of a pruning-based UK-means run, with pruning-effectiveness
/// counters.
#[derive(Debug, Clone)]
pub struct PruningResult {
    /// Final partition.
    pub clustering: Clustering,
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Exact (sample-averaged) expected-distance evaluations performed.
    pub ed_evaluations: usize,
    /// Candidate centroids eliminated by bounds before any ED evaluation.
    pub pruned_candidates: usize,
    /// Object-assignments resolved without a single ED evaluation.
    pub zero_ed_assignments: usize,
    /// Whether assignments stabilized before the cap.
    pub converged: bool,
}

/// The expected distance under the Euclidean metric has no closed form, which
/// is what the pruning literature targets; both pruners therefore run with
/// [`Metric::Euclidean`].
const METRIC: Metric = Metric::Euclidean;

impl PruningUkMeans {
    /// Runs the pruning-accelerated UK-means.
    pub fn run(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<PruningResult, ClusterError> {
        let m = validate_input(data, k)?;
        let labels = self.init.initial_partition(data, k, rng);
        let cache = SampleCache::build(data, self.samples_per_object, rng);
        self.run_from(data, k, m, labels, &cache)
    }

    /// Runs from a given initial partition and sample cache.
    pub fn run_from(
        &self,
        data: &[UncertainObject],
        k: usize,
        m: usize,
        mut labels: Vec<usize>,
        cache: &SampleCache,
    ) -> Result<PruningResult, ClusterError> {
        let n = data.len();
        let arena = ucpc_uncertain::MomentArena::from_objects(data);
        let mut centroids = centroids_of(&arena, &labels, k, m);

        // Cluster-shift state: last exact ED per (object, centroid) plus the
        // accumulated centroid drift since it was computed. INFINITY means
        // "never computed".
        let mut last_ed = vec![f64::INFINITY; n * k];
        let mut drift = vec![0.0f64; k];

        let mut iterations = 0usize;
        let mut ed_evaluations = 0usize;
        let mut pruned_candidates = 0usize;
        let mut zero_ed_assignments = 0usize;
        let mut converged = false;

        // Scratch buffers reused across objects.
        let mut lo = vec![0.0f64; k];
        let mut hi = vec![0.0f64; k];
        let mut alive = vec![true; k];

        while iterations < self.max_iters {
            iterations += 1;
            let mut moved = false;

            for i in 0..n {
                let region = data[i].region();

                // Min/max bounding-box distance bounds, tightened by
                // cluster-shift where an earlier exact ED is available.
                for (c, cent) in centroids.iter().enumerate() {
                    let mut l = region.min_sq_distance_to(cent).sqrt();
                    let mut h = region.max_sq_distance_to(cent).sqrt();
                    if self.cluster_shift {
                        let prev = last_ed[i * k + c];
                        if prev.is_finite() {
                            l = l.max(prev - drift[c]);
                            h = h.min(prev + drift[c]);
                        }
                    }
                    lo[c] = l;
                    hi[c] = h;
                    alive[c] = true;
                }

                // MinMax pruning: candidates whose lower bound exceeds the
                // global smallest upper bound cannot win.
                let hi_min = hi.iter().copied().fold(f64::INFINITY, f64::min);
                for c in 0..k {
                    if lo[c] > hi_min {
                        alive[c] = false;
                        pruned_candidates += 1;
                    }
                }

                // Bisector pruning (VDBiP): for every surviving pair (a, b),
                // if the whole box is on a's side of the bisector, prune b.
                if self.strategy == PruningStrategy::VdBiP {
                    for a in 0..k {
                        if !alive[a] {
                            continue;
                        }
                        for b in 0..k {
                            if a == b || !alive[b] {
                                continue;
                            }
                            if box_on_side_of(region, &centroids[a], &centroids[b]) {
                                alive[b] = false;
                                pruned_candidates += 1;
                            }
                        }
                    }
                }

                let survivors: Vec<usize> = (0..k).filter(|&c| alive[c]).collect();
                let best = match survivors.as_slice() {
                    [] => unreachable!("the minimal-upper-bound centroid always survives"),
                    [only] => {
                        zero_ed_assignments += 1;
                        *only
                    }
                    _ => {
                        let mut best = survivors[0];
                        let mut best_d = f64::INFINITY;
                        for &c in &survivors {
                            let d = expected_distance_sampled(cache.of(i), &centroids[c], METRIC);
                            ed_evaluations += 1;
                            last_ed[i * k + c] = d;
                            if d < best_d {
                                best_d = d;
                                best = c;
                            }
                        }
                        best
                    }
                };

                if best != labels[i] {
                    labels[i] = best;
                    moved = true;
                }
            }

            if !moved {
                converged = true;
                break;
            }

            let new_centroids = centroids_of(&arena, &labels, k, m);
            for c in 0..k {
                let shift = euclidean(&centroids[c], &new_centroids[c]);
                drift[c] += shift;
            }
            centroids = new_centroids;
        }

        Ok(PruningResult {
            clustering: Clustering::new(labels, k),
            centroids,
            iterations,
            ed_evaluations,
            pruned_candidates,
            zero_ed_assignments,
            converged,
        })
    }
}

/// Whether the whole box lies in the closed halfspace of points at least as
/// close to `a` as to `b`: `max_{x in box} (||x−a||² − ||x−b||²) <= 0`.
/// The difference is linear in `x`, so the maximum is attained corner-wise
/// per dimension — an O(m) test.
fn box_on_side_of(region: &ucpc_uncertain::BoxRegion, a: &[f64], b: &[f64]) -> bool {
    let mut max_diff = 0.0;
    for j in 0..region.dims() {
        let side = region.side(j);
        // ||x−a||² − ||x−b||² contribution in dim j:
        // (x−a_j)² − (x−b_j)² = −2x(a_j−b_j) + a_j² − b_j².
        let w = -2.0 * (a[j] - b[j]);
        let x = if w > 0.0 { side.hi } else { side.lo };
        max_diff += w * x + a[j] * a[j] - b[j] * b[j];
    }
    max_diff <= 0.0
}

impl UncertainClusterer for PruningUkMeans {
    fn name(&self) -> &'static str {
        match self.strategy {
            PruningStrategy::MinMaxBb => "MinMax-BB",
            PruningStrategy::VdBiP => "VDBiP",
        }
    }

    fn cluster(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Clustering, ClusterError> {
        Ok(self.run(data, k, rng)?.clustering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bukmeans::BasicUkMeans;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ucpc_uncertain::UnivariatePdf;

    fn blobs() -> Vec<UncertainObject> {
        let mut data = Vec::new();
        for c in [0.0, 25.0, 50.0] {
            for i in 0..6 {
                data.push(UncertainObject::with_coverage(
                    vec![
                        UnivariatePdf::normal(c + (i % 3) as f64 * 0.3, 0.4),
                        UnivariatePdf::normal(c, 0.4),
                    ],
                    0.95,
                ));
            }
        }
        data
    }

    #[test]
    fn minmax_bb_matches_unpruned_assignments() {
        let data = blobs();
        let labels: Vec<usize> = (0..data.len()).map(|i| i % 3).collect();
        let mut rng = StdRng::seed_from_u64(20);
        let cache = SampleCache::build(&data, 128, &mut rng);

        let pruned = PruningUkMeans::min_max_bb()
            .run_from(&data, 3, 2, labels.clone(), &cache)
            .unwrap();
        let unpruned = BasicUkMeans {
            metric: Metric::Euclidean,
            ..Default::default()
        }
        .run_from(&data, 3, 2, labels, &cache)
        .unwrap();
        assert_eq!(
            pruned.clustering.labels(),
            unpruned.clustering.labels(),
            "pruning must not change the result"
        );
    }

    #[test]
    fn vdbip_matches_unpruned_assignments() {
        let data = blobs();
        let labels: Vec<usize> = (0..data.len()).map(|i| i % 3).collect();
        let mut rng = StdRng::seed_from_u64(21);
        let cache = SampleCache::build(&data, 128, &mut rng);

        let pruned = PruningUkMeans::vdbip()
            .run_from(&data, 3, 2, labels.clone(), &cache)
            .unwrap();
        let unpruned = BasicUkMeans {
            metric: Metric::Euclidean,
            ..Default::default()
        }
        .run_from(&data, 3, 2, labels, &cache)
        .unwrap();
        assert_eq!(pruned.clustering.labels(), unpruned.clustering.labels());
    }

    #[test]
    fn pruning_reduces_ed_evaluations() {
        let data = blobs();
        let labels: Vec<usize> = (0..data.len()).map(|i| i % 3).collect();
        let mut rng = StdRng::seed_from_u64(22);
        let cache = SampleCache::build(&data, 128, &mut rng);

        let pruned = PruningUkMeans::min_max_bb()
            .run_from(&data, 3, 2, labels.clone(), &cache)
            .unwrap();
        let unpruned = BasicUkMeans {
            metric: Metric::Euclidean,
            ..Default::default()
        }
        .run_from(&data, 3, 2, labels, &cache)
        .unwrap();
        assert!(
            pruned.ed_evaluations < unpruned.ed_evaluations,
            "pruned {} vs unpruned {}",
            pruned.ed_evaluations,
            unpruned.ed_evaluations
        );
        assert!(pruned.pruned_candidates > 0);
    }

    #[test]
    fn vdbip_prunes_at_least_as_many_as_minmax() {
        let data = blobs();
        let labels: Vec<usize> = (0..data.len()).map(|i| i % 3).collect();
        let mut rng = StdRng::seed_from_u64(23);
        let cache = SampleCache::build(&data, 128, &mut rng);

        let mm = PruningUkMeans::min_max_bb()
            .run_from(&data, 3, 2, labels.clone(), &cache)
            .unwrap();
        let vd = PruningUkMeans::vdbip()
            .run_from(&data, 3, 2, labels, &cache)
            .unwrap();
        assert!(vd.ed_evaluations <= mm.ed_evaluations);
    }

    #[test]
    fn cluster_shift_tightens_bounds() {
        let data = blobs();
        let labels: Vec<usize> = (0..data.len()).map(|i| i % 3).collect();
        let mut rng = StdRng::seed_from_u64(24);
        let cache = SampleCache::build(&data, 128, &mut rng);

        let with_shift = PruningUkMeans::min_max_bb()
            .run_from(&data, 3, 2, labels.clone(), &cache)
            .unwrap();
        let without_shift = PruningUkMeans {
            cluster_shift: false,
            ..PruningUkMeans::min_max_bb()
        }
        .run_from(&data, 3, 2, labels, &cache)
        .unwrap();
        assert!(with_shift.ed_evaluations <= without_shift.ed_evaluations);
    }

    #[test]
    fn box_side_test_basics() {
        use ucpc_uncertain::{BoxRegion, Interval};
        let region = BoxRegion::new(vec![Interval::new(0.0, 1.0)]);
        // Box [0,1]; a = 0.5, b = 10: the box is wholly on a's side.
        assert!(box_on_side_of(&region, &[0.5], &[10.0]));
        // a = 10, b = 0.5: wholly on b's side, so not on a's side.
        assert!(!box_on_side_of(&region, &[10.0], &[0.5]));
        // Bisector of (0, 1.5) at 0.75 crosses the box: undecided.
        assert!(!box_on_side_of(&region, &[0.0], &[1.5]));
    }
}
