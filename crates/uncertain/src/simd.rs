//! Runtime-dispatched SIMD backends for the fused dot product — the single
//! O(m) pass at the bottom of every delta-`J` candidate evaluation.
//!
//! # What lives here
//!
//! * [`dot`] — the dispatched `⟨a, b⟩` kernel consumed by
//!   `ucpc_core::objective::ClusterStats::delta_j_add` and friends through
//!   its [`crate::arena::dot`] re-export;
//! * [`dot3`] — a fused variant computing three dot products of one shared
//!   row against three mean-sum vectors in a single pass
//!   (`⟨x, a⟩, ⟨x, b⟩, ⟨x, c⟩`), so a candidate scan batching clusters in
//!   threes loads the object's `mu` row once instead of three times;
//! * [`Backend`] — the explicit backend set (scalar, AVX2+FMA, NEON) with
//!   runtime detection, the `UCPC_SIMD` environment knob, and
//!   [`force_backend`] for benches and tests;
//! * [`dot_unfused`] — the pre-SIMD four-accumulator loop of PR 1, kept as
//!   the property-tested accuracy reference (it is *not* a dispatch target;
//!   see "Numerical contract" below for why).
//!
//! # Dispatch
//!
//! The backend is resolved once, on first kernel use, and cached in an
//! atomic: `x86_64` machines with AVX2 and FMA get [`Backend::Avx2`]
//! (checked via `is_x86_feature_detected!`), `aarch64` machines get
//! [`Backend::Neon`], everything else falls back to [`Backend::Scalar`].
//! The `UCPC_SIMD` environment variable (`scalar` | `avx2` | `neon` |
//! `auto`, default `auto`) overrides detection — mirroring the
//! `UCPC_PRUNING` knob — and an unavailable or unrecognized choice warns on
//! stderr and falls back to auto-detection rather than aborting.
//!
//! # Numerical contract: every backend is bit-identical
//!
//! All three backends implement one canonical evaluation order:
//!
//! * main blocks of 16 elements feed 16 independent fused-multiply-add
//!   accumulator lanes (lane `l` accumulates elements `16·i + l`);
//! * a second stage of 4-element blocks feeds 4 FMA lanes;
//! * the remaining `< 4` elements accumulate serially with FMA;
//! * the lanes are reduced by one fixed association,
//!   `r_j = (l_j + l_{j+4}) + (l_{j+8} + l_{j+12})` then
//!   `(r_0 + r_2) + (r_1 + r_3)`, and the partial results combine as
//!   `(main16 + main4) + tail`, with a stage *omitted* (not added as zero)
//!   when its block count is zero — every backend takes the same branch for
//!   a given length, so short inputs skip the 16-lane machinery without
//!   breaking cross-backend identity.
//!
//! Because IEEE-754 fused multiply-add is exactly rounded — whether it comes
//! from `_mm256_fmadd_pd`, `vfmaq_f64`, a scalar `fmadd` instruction, or
//! libm's software `fma` — a fixed lane structure and reduction order make
//! every backend produce **bit-identical** results on every input, with no
//! fast-math anywhere. Switching `UCPC_SIMD=scalar|avx2|neon|auto` therefore
//! changes wall-clock time and nothing else: clustering labels are
//! byte-identical across backends, which is what lets the whole tier-1 test
//! suite (including the pruning-exactness guarantees of
//! `ucpc_core::pruning`) run unchanged under any backend. [`dot3`]'s
//! per-dot lane structure is identical to [`dot`]'s, so a scan that batches
//! candidates in threes is bit-identical to one that evaluates them one at
//! a time.
//!
//! Rows shorter than [`DISPATCH_THRESHOLD`] bypass dispatch entirely: a
//! non-inlinable backend call costs more than the (L1-resident) work it
//! would do, so every entry point — [`dot`], [`dot3`], [`dot_with`],
//! [`dot3_with`] — routes short rows through the inlined unfused loop
//! *before* consulting the backend. The branch is uniform across entry
//! points and backend choices, so short rows are backend-independent and
//! the cross-backend identity holds over the full length range.
//!
//! The one loop that does *not* share the FMA contract is [`dot_unfused`]:
//! the pre-SIMD reference multiplies and adds in separate (twice-rounded)
//! operations, so it agrees with the FMA backends only to rounding
//! error. Tests pin the dispatched backends to `dot_unfused` within a
//! ULP-scaled tolerance and to each other exactly.
//!
//! # Performance notes
//!
//! The AVX2 path retires four 256-bit FMAs per main-block iteration and is
//! limited by the two loads it issues per FMA; [`dot3`] lifts that to three
//! FMAs per four loads by sharing the `x` row. [`Backend::Scalar`] is a
//! genuine one-element-at-a-time loop: its `f64::mul_add` compiles to a
//! scalar `fmadd` instruction where the build target has FMA and otherwise
//! calls libm's correctly-rounded `fma` (glibc dispatches that to hardware
//! FMA at run time; soft-float targets pay for the emulation). It exists as
//! the correctness fallback and the benchmark comparator, not as a fast
//! path — on pre-FMA x86 hardware the auto-vectorizable [`dot_unfused`]
//! loop can be faster, but keeping the fallback bit-identical to the SIMD
//! paths is worth more here than the last word in museum-hardware speed.
//! Build with `RUSTFLAGS="-C target-cpu=native"` to let the surrounding
//! scalar code (tails, per-object algebra) use the same ISA extensions the
//! dispatched kernel detects.

use std::sync::atomic::{AtomicU8, Ordering};

/// A dispatchable dot-product backend.
///
/// Variants exist on every architecture so that configuration, reporting and
/// error messages are portable; [`Backend::is_available`] says whether the
/// current machine can actually run one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// One-element-at-a-time FMA loop; available everywhere and
    /// bit-identical to the SIMD paths (see the module docs).
    Scalar,
    /// 256-bit AVX2 + FMA path (`_mm256_fmadd_pd`, 4 × 4-lane
    /// accumulators); requires `x86_64` with both features detected at run
    /// time.
    Avx2,
    /// 128-bit NEON path (`vfmaq_f64`, 8 × 2-lane accumulators); requires
    /// `aarch64`.
    Neon,
}

impl Backend {
    /// Whether this backend can run on the current machine.
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => false,
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[cfg(not(target_arch = "aarch64"))]
            Backend::Neon => false,
        }
    }

    /// The best backend the current machine supports (what `UCPC_SIMD=auto`
    /// resolves to).
    pub fn detect() -> Self {
        if Backend::Avx2.is_available() {
            Backend::Avx2
        } else if Backend::Neon.is_available() {
            Backend::Neon
        } else {
            Backend::Scalar
        }
    }

    /// Every backend the current machine supports, scalar first.
    pub fn available() -> Vec<Self> {
        [Backend::Scalar, Backend::Avx2, Backend::Neon]
            .into_iter()
            .filter(|b| b.is_available())
            .collect()
    }

    /// The `UCPC_SIMD` value naming this backend.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    fn from_u8(b: u8) -> Self {
        match b {
            AVX2 => Backend::Avx2,
            NEON => Backend::Neon,
            _ => Backend::Scalar,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Backend::Scalar => SCALAR,
            Backend::Avx2 => AVX2,
            Backend::Neon => NEON,
        }
    }
}

const UNINIT: u8 = 0;
const SCALAR: u8 = 1;
const AVX2: u8 = 2;
const NEON: u8 = 3;

/// The cached dispatch decision; `UNINIT` until first kernel use.
static ACTIVE: AtomicU8 = AtomicU8::new(UNINIT);

/// The backend the dispatched [`dot`]/[`dot3`] calls will use (resolving it
/// now if this is the first kernel touch).
#[inline]
pub fn active_backend() -> Backend {
    match ACTIVE.load(Ordering::Relaxed) {
        UNINIT => init_backend(),
        b => Backend::from_u8(b),
    }
}

/// First-use resolution: honour `UCPC_SIMD` (parsed through the shared
/// warn-and-fall-back knob reader, [`crate::env::read_knob`]), fall back to
/// detection. A race between threads at most repeats the (idempotent)
/// resolution.
#[cold]
fn init_backend() -> Backend {
    let chosen = crate::env::read_knob("UCPC_SIMD", "scalar|avx2|neon|auto", |v| match v {
        "auto" | "" => Some(Backend::detect()),
        "scalar" => Some(Backend::Scalar),
        "avx2" => Some(Backend::Avx2),
        "neon" => Some(Backend::Neon),
        _ => None,
    })
    .unwrap_or_else(Backend::detect);
    let chosen = if chosen.is_available() {
        chosen
    } else {
        let fallback = Backend::detect();
        eprintln!(
            "UCPC_SIMD requested the {} backend, which this machine cannot \
             run; falling back to {}",
            chosen.name(),
            fallback.name()
        );
        fallback
    };
    ACTIVE.store(chosen.as_u8(), Ordering::Relaxed);
    chosen
}

/// Overrides the dispatched backend for the rest of the process (or until
/// the next call). Benches use this to time `scalar` against the detected
/// SIMD path inside one process; tests use it to pin a backend regardless
/// of the environment. Fails if the machine cannot run `backend`.
///
/// Because every backend is bit-identical (module docs), flipping the
/// backend mid-run — even from another thread — changes performance only,
/// never results.
pub fn force_backend(backend: Backend) -> Result<(), &'static str> {
    if !backend.is_available() {
        return Err("requested SIMD backend is not available on this machine");
    }
    ACTIVE.store(backend.as_u8(), Ordering::Relaxed);
    Ok(())
}

/// Rows shorter than this never reach a backend: the call overhead of a
/// runtime-dispatched (and therefore non-inlinable) kernel exceeds the work
/// on an L1-resident short row, and the inlined [`dot_unfused`] loop
/// auto-vectorizes well at these sizes. Kept uniform across every entry
/// point so the choice of backend can never change a short row's bits.
pub const DISPATCH_THRESHOLD: usize = 16;

/// Fused dot product `⟨a, b⟩` through the dispatched backend — the kernel's
/// single O(m) pass.
///
/// ```
/// use ucpc_uncertain::simd::{dot, dot_unfused};
///
/// let a = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let b = [0.5, -1.0, 2.0, 0.25, -2.0];
/// let exact = 0.5 - 2.0 + 6.0 + 1.0 - 10.0;
/// assert_eq!(dot(&a, &b), exact);
/// // The PR 1 unfused loop is kept as the accuracy reference.
/// assert!((dot(&a, &b) - dot_unfused(&a, &b)).abs() < 1e-12);
/// ```
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    // A hard check, not a debug_assert: silently truncating on mismatched
    // lengths would turn a caller's dimension bug into wrong relocation
    // deltas in release builds. One predictable branch on the hot path.
    assert_eq!(a.len(), b.len(), "dot product requires equal-length slices");
    if a.len() < DISPATCH_THRESHOLD {
        return unfused_core(a, b);
    }
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::dot(a, b) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::dot(a, b) },
        _ => scalar::dot(a, b),
    }
}

/// Three fused dot products sharing one pass over `x`:
/// `[⟨x, a⟩, ⟨x, b⟩, ⟨x, c⟩]`.
///
/// The candidate scan of the relocation loop evaluates `⟨s_C, mu(o)⟩` for
/// every candidate cluster `C` against the *same* contiguous `mu(o)` row of
/// the [`crate::arena::MomentArena`]; batching candidates in threes loads
/// that row once per block instead of once per candidate. Each component
/// uses exactly [`dot`]'s lane structure, so `dot3(x, a, b, c)` is
/// bit-identical to `[dot(x, a), dot(x, b), dot(x, c)]` — scans may batch
/// or not without changing a single bit of output.
#[inline]
pub fn dot3(x: &[f64], a: &[f64], b: &[f64], c: &[f64]) -> [f64; 3] {
    assert!(
        a.len() == x.len() && b.len() == x.len() && c.len() == x.len(),
        "dot3 requires equal-length slices"
    );
    if x.len() < DISPATCH_THRESHOLD {
        return [unfused_core(x, a), unfused_core(x, b), unfused_core(x, c)];
    }
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::dot3(x, a, b, c) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::dot3(x, a, b, c) },
        _ => scalar::dot3(x, a, b, c),
    }
}

/// Fused dot products of one shared row `x` against a *block* of rows of a
/// flat row-major matrix: `out[i] = ⟨x, mu[idx[i]·m .. idx[i]·m+m]⟩` with
/// `m = x.len()`.
///
/// This is the batch-pricing primitive behind the serving front door: a
/// micro-batch prices `B` staged arrivals against each cluster's
/// `mean_sum` row, and calling [`dot`] (or even [`dot3`]) per pair pays
/// the dispatch branch and the non-inlinable `#[target_feature]` call
/// frame `B` times per cluster — at placement sizes (`m ≈ 32`) that
/// overhead rivals the FMA work itself. `dot_block` dispatches **once**
/// and composes the backend's own `dot3`/`dot` bodies inside a single
/// target-feature frame (same enabled features ⇒ the triple-dot bodies
/// inline), so the shared `x` row stays in registers across the block.
///
/// Every component is bit-identical to the corresponding single
/// [`dot(x, row)`](dot) call — the composition reuses the exact per-dot
/// lane structure, so batched and per-request pricing can never diverge
/// by a bit (the serving differential harness pins this end to end).
///
/// `idx` entries may repeat and appear in any order; each must satisfy
/// `(idx[i]+1)·m ≤ mu.len()` (checked by the row slicing).
#[inline]
pub fn dot_block(x: &[f64], mu: &[f64], idx: &[u32], out: &mut [f64]) {
    assert_eq!(idx.len(), out.len(), "dot_block needs one output per row");
    let m = x.len();
    if m < DISPATCH_THRESHOLD {
        for (o, &r) in out.iter_mut().zip(idx) {
            let r = r as usize;
            *o = unfused_core(x, &mu[r * m..r * m + m]);
        }
        return;
    }
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::dot_block(x, mu, idx, out) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::dot_block(x, mu, idx, out) },
        _ => scalar::dot_block(x, mu, idx, out),
    }
}

/// [`dot_block`] through one explicit backend (which must be available).
pub fn dot_block_with(backend: Backend, x: &[f64], mu: &[f64], idx: &[u32], out: &mut [f64]) {
    assert_eq!(idx.len(), out.len(), "dot_block needs one output per row");
    assert!(backend.is_available(), "backend not available on this CPU");
    let m = x.len();
    if m < DISPATCH_THRESHOLD {
        for (o, &r) in out.iter_mut().zip(idx) {
            let r = r as usize;
            *o = unfused_core(x, &mu[r * m..r * m + m]);
        }
        return;
    }
    match backend {
        Backend::Scalar => scalar::dot_block(x, mu, idx, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::dot_block(x, mu, idx, out) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::dot_block(x, mu, idx, out) },
        #[allow(unreachable_patterns)]
        _ => unreachable!("availability checked above"),
    }
}

/// [`dot`] through one explicit backend (which must be available) — the
/// hook behind the dispatch-matrix tests and per-backend benches.
pub fn dot_with(backend: Backend, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal-length slices");
    assert!(backend.is_available(), "backend not available on this CPU");
    if a.len() < DISPATCH_THRESHOLD {
        return unfused_core(a, b);
    }
    match backend {
        Backend::Scalar => scalar::dot(a, b),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::dot(a, b) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::dot(a, b) },
        #[allow(unreachable_patterns)]
        _ => unreachable!("availability checked above"),
    }
}

/// [`dot3`] through one explicit backend (which must be available).
pub fn dot3_with(backend: Backend, x: &[f64], a: &[f64], b: &[f64], c: &[f64]) -> [f64; 3] {
    assert!(
        a.len() == x.len() && b.len() == x.len() && c.len() == x.len(),
        "dot3 requires equal-length slices"
    );
    assert!(backend.is_available(), "backend not available on this CPU");
    if x.len() < DISPATCH_THRESHOLD {
        return [unfused_core(x, a), unfused_core(x, b), unfused_core(x, c)];
    }
    match backend {
        Backend::Scalar => scalar::dot3(x, a, b, c),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::dot3(x, a, b, c) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::dot3(x, a, b, c) },
        #[allow(unreachable_patterns)]
        _ => unreachable!("availability checked above"),
    }
}

/// The PR 1 four-accumulator unfused loop, kept verbatim as the
/// property-tested accuracy reference. It rounds multiply and add
/// separately, so it agrees with the FMA backends only to rounding error —
/// tests compare against it with a ULP-scaled tolerance, and against the
/// backends with exact equality.
#[inline]
pub fn dot_unfused(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal-length slices");
    unfused_core(a, b)
}

/// [`dot_unfused`]'s body, shared with the short-row fast path of the
/// dispatched entry points (callers have checked lengths).
#[inline]
fn unfused_core(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; 4];
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    for (&x, &y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Reduces 16 lanes with the canonical association shared by every backend:
/// `r_j = (l_j + l_{j+4}) + (l_{j+8} + l_{j+12})`, then
/// `(r_0 + r_2) + (r_1 + r_3)`.
#[inline(always)]
fn reduce16(l: &[f64; 16]) -> f64 {
    let r0 = (l[0] + l[4]) + (l[8] + l[12]);
    let r1 = (l[1] + l[5]) + (l[9] + l[13]);
    let r2 = (l[2] + l[6]) + (l[10] + l[14]);
    let r3 = (l[3] + l[7]) + (l[11] + l[15]);
    (r0 + r2) + (r1 + r3)
}

/// Reduces 4 lanes with the canonical association: `(t_0 + t_2) + (t_1 + t_3)`.
#[inline(always)]
fn reduce4(t: &[f64; 4]) -> f64 {
    (t[0] + t[2]) + (t[1] + t[3])
}

/// Canonical combination of the three pipeline stages. Stages whose block
/// count is zero are omitted rather than added as `0.0` (the two differ for
/// `-0.0` results); every backend routes its partials through this one
/// function so the branch structure — and therefore the bits — match.
#[inline(always)]
fn combine(main16: Option<f64>, main4: Option<f64>, tail: f64) -> f64 {
    match (main16, main4) {
        (Some(a), Some(b)) => (a + b) + tail,
        (Some(a), None) => a + tail,
        (None, Some(b)) => b + tail,
        (None, None) => tail,
    }
}

/// The scalar backend: the canonical lane structure evaluated one element
/// at a time with exactly-rounded `f64::mul_add`.
mod scalar {
    use super::{combine, reduce16, reduce4};

    #[inline]
    pub(super) fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let (a, b) = (&a[..n], &b[..n]);
        let blocks = n / 16;
        let mut main16 = None;
        if blocks > 0 {
            let mut lanes = [0.0f64; 16];
            for i in 0..blocks {
                let base = i * 16;
                for (l, lane) in lanes.iter_mut().enumerate() {
                    *lane = a[base + l].mul_add(b[base + l], *lane);
                }
            }
            main16 = Some(reduce16(&lanes));
        }
        let mut base = blocks * 16;
        let mut main4 = None;
        if base + 4 <= n {
            let mut quads = [0.0f64; 4];
            while base + 4 <= n {
                for (l, quad) in quads.iter_mut().enumerate() {
                    *quad = a[base + l].mul_add(b[base + l], *quad);
                }
                base += 4;
            }
            main4 = Some(reduce4(&quads));
        }
        let mut tail = 0.0f64;
        for i in base..n {
            tail = a[i].mul_add(b[i], tail);
        }
        combine(main16, main4, tail)
    }

    /// Delegates to three [`dot`] calls: scalar code has no loads to
    /// amortize, and delegation makes the bit-identity to the one-at-a-time
    /// scan structural rather than re-derived.
    #[inline]
    pub(super) fn dot3(x: &[f64], a: &[f64], b: &[f64], c: &[f64]) -> [f64; 3] {
        [dot(x, a), dot(x, b), dot(x, c)]
    }

    /// Per-row [`dot`] over the block — no call overhead to amortize in
    /// scalar code, and delegation keeps the bits structural.
    pub(super) fn dot_block(x: &[f64], mu: &[f64], idx: &[u32], out: &mut [f64]) {
        let m = x.len();
        for (o, &r) in out.iter_mut().zip(idx) {
            let r = r as usize;
            *o = dot(x, &mu[r * m..r * m + m]);
        }
    }
}

/// AVX2 + FMA backend: 4 × 4-lane `_mm256_fmadd_pd` accumulators.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_castpd256_pd128, _mm256_extractf128_pd, _mm256_fmadd_pd,
        _mm256_loadu_pd, _mm256_setzero_pd, _mm_add_pd, _mm_add_sd, _mm_cvtsd_f64, _mm_unpackhi_pd,
    };

    /// Canonical 4-lane reduction of one 256-bit accumulator holding lanes
    /// `[r_0, r_1, r_2, r_3]`: `(r_0 + r_2) + (r_1 + r_3)`.
    #[inline(always)]
    unsafe fn reduce_ymm(r: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(r); // [r0, r1]
        let hi = _mm256_extractf128_pd(r, 1); // [r2, r3]
        let s = _mm_add_pd(lo, hi); // [r0+r2, r1+r3]
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
    }

    /// # Safety
    /// Caller must have verified `avx2` and `fma` CPU support; slices must
    /// be equal length (checked by the dispatch wrappers).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let blocks = n / 16;
        let mut main16 = None;
        if blocks > 0 {
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            let mut acc2 = _mm256_setzero_pd();
            let mut acc3 = _mm256_setzero_pd();
            for i in 0..blocks {
                let base = i * 16;
                acc0 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(pa.add(base)),
                    _mm256_loadu_pd(pb.add(base)),
                    acc0,
                );
                acc1 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(pa.add(base + 4)),
                    _mm256_loadu_pd(pb.add(base + 4)),
                    acc1,
                );
                acc2 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(pa.add(base + 8)),
                    _mm256_loadu_pd(pb.add(base + 8)),
                    acc2,
                );
                acc3 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(pa.add(base + 12)),
                    _mm256_loadu_pd(pb.add(base + 12)),
                    acc3,
                );
            }
            // r_j = (l_j + l_{j+4}) + (l_{j+8} + l_{j+12}) — reduce16.
            main16 = Some(reduce_ymm(_mm256_add_pd(
                _mm256_add_pd(acc0, acc1),
                _mm256_add_pd(acc2, acc3),
            )));
        }
        let mut base = blocks * 16;
        let mut main4 = None;
        if base + 4 <= n {
            let mut quads = _mm256_setzero_pd();
            while base + 4 <= n {
                quads = _mm256_fmadd_pd(
                    _mm256_loadu_pd(pa.add(base)),
                    _mm256_loadu_pd(pb.add(base)),
                    quads,
                );
                base += 4;
            }
            main4 = Some(reduce_ymm(quads));
        }
        let mut tail = 0.0f64;
        for i in base..n {
            // Compiles to a scalar vfmadd under the enabled features — the
            // same exactly-rounded operation the scalar backend performs.
            tail = a[i].mul_add(b[i], tail);
        }
        super::combine(main16, main4, tail)
    }

    /// Truly fused triple dot: the `x` row is loaded once per block and fed
    /// to three FMA accumulator sets (12 of the 16 ymm registers), lifting
    /// the loads-per-FMA ratio from 2 to 4/3.
    ///
    /// # Safety
    /// As for [`dot`].
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot3(x: &[f64], a: &[f64], b: &[f64], c: &[f64]) -> [f64; 3] {
        let n = x.len();
        let px = x.as_ptr();
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let pc = c.as_ptr();
        let blocks = n / 16;
        let has16 = blocks > 0;
        let mut acc = [[_mm256_setzero_pd(); 4]; 3];
        for i in 0..blocks {
            let base = i * 16;
            // Indexing three accumulator sets with one loop variable is the
            // point here (shared `xv` per quad); an iterator can't span them.
            #[allow(clippy::needless_range_loop)]
            for v in 0..4 {
                let xv = _mm256_loadu_pd(px.add(base + 4 * v));
                acc[0][v] = _mm256_fmadd_pd(xv, _mm256_loadu_pd(pa.add(base + 4 * v)), acc[0][v]);
                acc[1][v] = _mm256_fmadd_pd(xv, _mm256_loadu_pd(pb.add(base + 4 * v)), acc[1][v]);
                acc[2][v] = _mm256_fmadd_pd(xv, _mm256_loadu_pd(pc.add(base + 4 * v)), acc[2][v]);
            }
        }
        let mut base = blocks * 16;
        let has4 = base + 4 <= n;
        let mut quads = [_mm256_setzero_pd(); 3];
        while base + 4 <= n {
            let xv = _mm256_loadu_pd(px.add(base));
            quads[0] = _mm256_fmadd_pd(xv, _mm256_loadu_pd(pa.add(base)), quads[0]);
            quads[1] = _mm256_fmadd_pd(xv, _mm256_loadu_pd(pb.add(base)), quads[1]);
            quads[2] = _mm256_fmadd_pd(xv, _mm256_loadu_pd(pc.add(base)), quads[2]);
            base += 4;
        }
        let mut out = [0.0f64; 3];
        for (d, o) in out.iter_mut().enumerate() {
            let main16 = if has16 {
                Some(reduce_ymm(_mm256_add_pd(
                    _mm256_add_pd(acc[d][0], acc[d][1]),
                    _mm256_add_pd(acc[d][2], acc[d][3]),
                )))
            } else {
                None
            };
            let main4 = if has4 {
                Some(reduce_ymm(quads[d]))
            } else {
                None
            };
            let other = match d {
                0 => a,
                1 => b,
                _ => c,
            };
            let mut tail = 0.0f64;
            for i in base..n {
                tail = x[i].mul_add(other[i], tail);
            }
            *o = super::combine(main16, main4, tail);
        }
        out
    }

    /// Block pricing: triples through [`dot3`], remainder through [`dot`] —
    /// all inside one `#[target_feature]` frame, so the triple-dot bodies
    /// inline (matching features) and the dispatch/call overhead is paid
    /// once per block instead of once per row.
    ///
    /// # Safety
    /// As for [`dot`].
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot_block(x: &[f64], mu: &[f64], idx: &[u32], out: &mut [f64]) {
        let m = x.len();
        let b = idx.len();
        let row = |i: usize| {
            let r = idx[i] as usize;
            &mu[r * m..r * m + m]
        };
        let mut i = 0usize;
        while i + 3 <= b {
            let d = dot3(x, row(i), row(i + 1), row(i + 2));
            out[i] = d[0];
            out[i + 1] = d[1];
            out[i + 2] = d[2];
            i += 3;
        }
        while i < b {
            out[i] = dot(x, row(i));
            i += 1;
        }
    }
}

/// NEON backend: 8 × 2-lane `vfmaq_f64` accumulators covering the same 16
/// canonical lanes.
#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::{
        float64x2_t, vaddq_f64, vdupq_n_f64, vfmaq_f64, vgetq_lane_f64, vld1q_f64,
    };

    /// # Safety
    /// Caller must have verified NEON support; slices must be equal length
    /// (checked by the dispatch wrappers).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let blocks = n / 16;
        let mut main16 = None;
        if blocks > 0 {
            // acc[v] holds canonical lanes [2v, 2v+1].
            let mut acc: [float64x2_t; 8] = [vdupq_n_f64(0.0); 8];
            for i in 0..blocks {
                let base = i * 16;
                for (v, lane) in acc.iter_mut().enumerate() {
                    *lane = vfmaq_f64(
                        *lane,
                        vld1q_f64(pa.add(base + 2 * v)),
                        vld1q_f64(pb.add(base + 2 * v)),
                    );
                }
            }
            // r_j = (l_j + l_{j+4}) + (l_{j+8} + l_{j+12}):
            //   [r0, r1] = (acc0 + acc2) + (acc4 + acc6)
            //   [r2, r3] = (acc1 + acc3) + (acc5 + acc7)
            let ra = vaddq_f64(vaddq_f64(acc[0], acc[2]), vaddq_f64(acc[4], acc[6]));
            let rb = vaddq_f64(vaddq_f64(acc[1], acc[3]), vaddq_f64(acc[5], acc[7]));
            let s = vaddq_f64(ra, rb); // [r0+r2, r1+r3]
            main16 = Some(vgetq_lane_f64(s, 0) + vgetq_lane_f64(s, 1));
        }
        let mut base = blocks * 16;
        let mut main4 = None;
        if base + 4 <= n {
            let mut q0 = vdupq_n_f64(0.0); // canonical quad lanes [t0, t1]
            let mut q1 = vdupq_n_f64(0.0); // canonical quad lanes [t2, t3]
            while base + 4 <= n {
                q0 = vfmaq_f64(q0, vld1q_f64(pa.add(base)), vld1q_f64(pb.add(base)));
                q1 = vfmaq_f64(q1, vld1q_f64(pa.add(base + 2)), vld1q_f64(pb.add(base + 2)));
                base += 4;
            }
            let sq = vaddq_f64(q0, q1); // [t0+t2, t1+t3]
            main4 = Some(vgetq_lane_f64(sq, 0) + vgetq_lane_f64(sq, 1));
        }
        let mut tail = 0.0f64;
        for i in base..n {
            tail = a[i].mul_add(b[i], tail);
        }
        super::combine(main16, main4, tail)
    }

    /// Delegates to three [`dot`] calls: a fused triple would need 24 live
    /// accumulator registers plus loads, past the 32-register NEON file, and
    /// the shared `x` row stays L1-resident across the three passes anyway.
    /// Delegation also makes bit-identity with the unbatched scan structural.
    ///
    /// # Safety
    /// As for [`dot`].
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dot3(x: &[f64], a: &[f64], b: &[f64], c: &[f64]) -> [f64; 3] {
        [dot(x, a), dot(x, b), dot(x, c)]
    }

    /// Block pricing: per-row [`dot`] inside one `#[target_feature]` frame
    /// (the row dots inline — matching features), paying dispatch and call
    /// overhead once per block instead of once per row.
    ///
    /// # Safety
    /// As for [`dot`].
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dot_block(x: &[f64], mu: &[f64], idx: &[u32], out: &mut [f64]) {
        let m = x.len();
        for (o, &r) in out.iter_mut().zip(idx) {
            let r = r as usize;
            *o = dot(x, &mu[r * m..r * m + m]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f64>, Vec<f64>) {
        let a: Vec<f64> = (0..n).map(|i| (i as f64) * 0.37 - 4.1).collect();
        let b: Vec<f64> = (0..n).map(|i| 2.3 - (i as f64) * 0.11).collect();
        (a, b)
    }

    #[test]
    fn scalar_matches_naive_for_all_lengths() {
        for n in 0..70usize {
            let (a, b) = vecs(n);
            let naive: f64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
            let got = scalar::dot(&a, &b);
            assert!(
                (got - naive).abs() < 1e-9 * (1.0 + naive.abs()),
                "length {n}: {got} vs {naive}"
            );
        }
    }

    #[test]
    fn every_available_backend_is_bit_identical_to_scalar() {
        for backend in Backend::available() {
            for n in 0..70usize {
                let (a, b) = vecs(n);
                let reference = dot_with(Backend::Scalar, &a, &b);
                let got = dot_with(backend, &a, &b);
                assert_eq!(
                    got.to_bits(),
                    reference.to_bits(),
                    "{} != scalar at length {n}",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn dot3_is_bit_identical_to_three_dots_on_every_backend() {
        for backend in Backend::available() {
            for n in 0..70usize {
                let (x, a) = vecs(n);
                let b: Vec<f64> = x.iter().map(|v| v * 0.5 + 1.0).collect();
                let c: Vec<f64> = x.iter().map(|v| 2.0 - v).collect();
                let fused = dot3_with(backend, &x, &a, &b, &c);
                let split = [
                    dot_with(backend, &x, &a),
                    dot_with(backend, &x, &b),
                    dot_with(backend, &x, &c),
                ];
                for d in 0..3 {
                    assert_eq!(
                        fused[d].to_bits(),
                        split[d].to_bits(),
                        "{} dot3[{d}] at length {n}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn dot_block_is_bit_identical_to_per_row_dots_on_every_backend() {
        for backend in Backend::available() {
            // m brackets the dispatch threshold and exercises 16-block,
            // quad, and tail lanes; block sizes cover the empty block, the
            // sub-triple remainder, and full triples; indices are scattered
            // and repeat.
            for m in [2usize, 8, 16, 32, 33, 48] {
                let rows = 9usize;
                let mu: Vec<f64> = (0..rows * m).map(|i| (i as f64) * 0.29 - 6.3).collect();
                let x: Vec<f64> = (0..m).map(|i| 1.7 - (i as f64) * 0.13).collect();
                let idx_pool: Vec<u32> = vec![4, 0, 8, 2, 2, 7, 1, 5, 3, 6, 0];
                for b in 0..idx_pool.len() {
                    let idx = &idx_pool[..b];
                    let mut out = vec![0.0f64; b];
                    dot_block_with(backend, &x, &mu, idx, &mut out);
                    for (i, &r) in idx.iter().enumerate() {
                        let r = r as usize;
                        let single = dot_with(backend, &x, &mu[r * m..r * m + m]);
                        assert_eq!(
                            out[i].to_bits(),
                            single.to_bits(),
                            "{} dot_block[{i}] (row {r}) at m={m}, b={b}",
                            backend.name()
                        );
                    }
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_backend_handles_short_rows_directly() {
        // Dispatch never sends sub-threshold rows to a backend, but the
        // backend functions stay total: check them below the threshold too.
        if !Backend::Avx2.is_available() {
            return;
        }
        for n in 0..20usize {
            let (a, b) = vecs(n);
            let got = unsafe { avx2::dot(&a, &b) };
            let reference = scalar::dot(&a, &b);
            assert_eq!(got.to_bits(), reference.to_bits(), "length {n}");
        }
    }

    #[test]
    fn dispatched_dot_matches_forced_active_backend() {
        let (a, b) = vecs(33);
        let via_dispatch = dot(&a, &b);
        let via_explicit = dot_with(active_backend(), &a, &b);
        assert_eq!(via_dispatch.to_bits(), via_explicit.to_bits());
    }

    #[test]
    fn force_backend_round_trips() {
        let detected = Backend::detect();
        force_backend(Backend::Scalar).unwrap();
        assert_eq!(active_backend(), Backend::Scalar);
        force_backend(detected).unwrap();
        assert_eq!(active_backend(), detected);
        #[cfg(target_arch = "x86_64")]
        assert!(force_backend(Backend::Neon).is_err());
        #[cfg(target_arch = "aarch64")]
        assert!(force_backend(Backend::Avx2).is_err());
    }

    #[test]
    fn nan_and_infinity_propagate_identically() {
        for backend in Backend::available() {
            for (position, len) in [(0usize, 5usize), (3, 20), (17, 33), (40, 64)] {
                // A NaN anywhere must surface as NaN from every backend.
                let (mut a, b) = vecs(len);
                a[position.min(len - 1)] = f64::NAN;
                assert!(
                    dot_with(backend, &a, &b).is_nan(),
                    "{} swallowed a NaN at {position}/{len}",
                    backend.name()
                );
                // A single infinity (with a nonzero partner) must produce
                // the same signed infinity everywhere.
                let (mut a, b) = vecs(len);
                a[position.min(len - 1)] = f64::INFINITY;
                let reference = dot_with(Backend::Scalar, &a, &b);
                let got = dot_with(backend, &a, &b);
                assert_eq!(
                    got.to_bits(),
                    reference.to_bits(),
                    "{} infinity at {position}/{len}: {got} vs {reference}",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn unfused_reference_agrees_within_rounding() {
        for n in [0usize, 1, 3, 4, 15, 16, 31, 32, 33, 64] {
            let (a, b) = vecs(n);
            let fused = scalar::dot(&a, &b);
            let unfused = dot_unfused(&a, &b);
            let scale: f64 = a.iter().zip(&b).map(|(&x, &y)| (x * y).abs()).sum();
            assert!(
                (fused - unfused).abs() <= 1e-13 * (1.0 + scale),
                "length {n}: fused {fused} vs unfused {unfused}"
            );
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot3(&[], &[], &[], &[]), [0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
