//! Domain regions of uncertain objects.
//!
//! The paper (Theorem 1) models every uncertain object's domain region as an
//! axis-aligned hyper-rectangle `R = [l_1, u_1] x ... x [l_m, u_m]`; the
//! U-centroid region is then the member-wise average box. [`Interval`] is one
//! side of that box and [`BoxRegion`] the full region.

use serde::{Deserialize, Serialize};

/// A closed real interval `[lo, hi]` (one dimension of a domain region).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// Creates `[lo, hi]`. Panics in debug builds if `lo > hi` or either
    /// endpoint is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        debug_assert!(
            !lo.is_nan() && !hi.is_nan(),
            "interval endpoints must not be NaN"
        );
        debug_assert!(lo <= hi, "interval requires lo <= hi, got [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    pub fn point(x: f64) -> Self {
        Self::new(x, x)
    }

    /// Interval width `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Interval midpoint.
    pub fn center(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether `x` lies in the closed interval.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Intersection with another interval, or `None` if disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then(|| Interval::new(lo, hi))
    }

    /// Smallest interval containing both operands.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Clamps `x` into the interval.
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lo, self.hi)
    }

    /// Distance from a scalar to the interval (0 when inside).
    pub fn distance_to(&self, x: f64) -> f64 {
        if x < self.lo {
            self.lo - x
        } else if x > self.hi {
            x - self.hi
        } else {
            0.0
        }
    }

    /// Largest distance from `x` to any point of the interval.
    pub fn max_distance_to(&self, x: f64) -> f64 {
        (x - self.lo).abs().max((x - self.hi).abs())
    }
}

/// An `m`-dimensional axis-aligned box: the domain region of a multivariate
/// uncertain object (Definition 1 with the rectangular regions of Theorem 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxRegion {
    sides: Box<[Interval]>,
}

impl BoxRegion {
    /// Builds a region from its per-dimension intervals.
    pub fn new(sides: impl Into<Box<[Interval]>>) -> Self {
        Self {
            sides: sides.into(),
        }
    }

    /// The degenerate region `{x}` of a deterministic point.
    pub fn point(x: &[f64]) -> Self {
        Self::new(x.iter().map(|&v| Interval::point(v)).collect::<Vec<_>>())
    }

    /// Number of dimensions `m`.
    pub fn dims(&self) -> usize {
        self.sides.len()
    }

    /// Per-dimension intervals.
    pub fn sides(&self) -> &[Interval] {
        &self.sides
    }

    /// The interval of dimension `j`.
    pub fn side(&self, j: usize) -> Interval {
        self.sides[j]
    }

    /// Whether the point lies inside the region. Panics if the
    /// dimensionalities differ.
    pub fn contains(&self, x: &[f64]) -> bool {
        assert_eq!(x.len(), self.dims(), "dimension mismatch");
        self.sides.iter().zip(x).all(|(iv, &v)| iv.contains(v))
    }

    /// The region's center point.
    pub fn center(&self) -> Vec<f64> {
        self.sides.iter().map(Interval::center).collect()
    }

    /// Squared Euclidean distance from `y` to the closest point of the box.
    ///
    /// Used by the MinMax-BB pruning baseline as a lower bound on the expected
    /// distance between an object and a candidate centroid.
    pub fn min_sq_distance_to(&self, y: &[f64]) -> f64 {
        assert_eq!(y.len(), self.dims(), "dimension mismatch");
        self.sides
            .iter()
            .zip(y)
            .map(|(iv, &v)| {
                let d = iv.distance_to(v);
                d * d
            })
            .sum()
    }

    /// Squared Euclidean distance from `y` to the farthest point of the box
    /// (always attained at a corner; computable per-dimension).
    pub fn max_sq_distance_to(&self, y: &[f64]) -> f64 {
        assert_eq!(y.len(), self.dims(), "dimension mismatch");
        self.sides
            .iter()
            .zip(y)
            .map(|(iv, &v)| {
                let d = iv.max_distance_to(v);
                d * d
            })
            .sum()
    }

    /// The member-wise average of several regions: the U-centroid's domain
    /// region per Theorem 1,
    /// `R = [ (1/|C|) Σ l_i^(j), (1/|C|) Σ u_i^(j) ]_j`.
    ///
    /// Panics if `regions` is empty or dimensionalities differ.
    pub fn average(regions: &[&BoxRegion]) -> BoxRegion {
        assert!(!regions.is_empty(), "cannot average zero regions");
        let m = regions[0].dims();
        let inv = 1.0 / regions.len() as f64;
        let sides = (0..m)
            .map(|j| {
                let (lo, hi) = regions.iter().fold((0.0, 0.0), |(lo, hi), r| {
                    assert_eq!(r.dims(), m, "dimension mismatch");
                    (lo + r.side(j).lo, hi + r.side(j).hi)
                });
                Interval::new(lo * inv, hi * inv)
            })
            .collect::<Vec<_>>();
        BoxRegion::new(sides)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let iv = Interval::new(-1.0, 3.0);
        assert_eq!(iv.width(), 4.0);
        assert_eq!(iv.center(), 1.0);
        assert!(iv.contains(0.0));
        assert!(iv.contains(-1.0) && iv.contains(3.0));
        assert!(!iv.contains(3.0001));
    }

    #[test]
    fn interval_distance() {
        let iv = Interval::new(0.0, 2.0);
        assert_eq!(iv.distance_to(1.0), 0.0);
        assert_eq!(iv.distance_to(-2.0), 2.0);
        assert_eq!(iv.distance_to(5.0), 3.0);
        assert_eq!(iv.max_distance_to(0.5), 1.5);
        assert_eq!(iv.max_distance_to(-1.0), 3.0);
    }

    #[test]
    fn interval_intersect_and_hull() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        assert_eq!(a.intersect(&b), Some(Interval::new(1.0, 2.0)));
        assert_eq!(a.hull(&b), Interval::new(0.0, 3.0));
        let c = Interval::new(5.0, 6.0);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn box_contains_and_center() {
        let r = BoxRegion::new(vec![Interval::new(0.0, 2.0), Interval::new(-1.0, 1.0)]);
        assert!(r.contains(&[1.0, 0.0]));
        assert!(!r.contains(&[3.0, 0.0]));
        assert_eq!(r.center(), vec![1.0, 0.0]);
    }

    #[test]
    fn box_min_max_distance() {
        let r = BoxRegion::new(vec![Interval::new(0.0, 2.0), Interval::new(0.0, 2.0)]);
        // Point inside: min distance 0, max distance to farthest corner.
        assert_eq!(r.min_sq_distance_to(&[1.0, 1.0]), 0.0);
        assert_eq!(r.max_sq_distance_to(&[0.0, 0.0]), 8.0);
        // Point outside along one axis.
        assert_eq!(r.min_sq_distance_to(&[4.0, 1.0]), 4.0);
    }

    #[test]
    fn average_region_matches_theorem_1() {
        let r1 = BoxRegion::new(vec![Interval::new(0.0, 2.0)]);
        let r2 = BoxRegion::new(vec![Interval::new(4.0, 6.0)]);
        let avg = BoxRegion::average(&[&r1, &r2]);
        assert_eq!(avg.side(0), Interval::new(2.0, 4.0));
    }

    #[test]
    fn point_region_is_degenerate() {
        let r = BoxRegion::point(&[1.0, -2.0]);
        assert_eq!(r.side(0).width(), 0.0);
        assert!(r.contains(&[1.0, -2.0]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn contains_panics_on_dim_mismatch() {
        let r = BoxRegion::point(&[1.0]);
        let _ = r.contains(&[1.0, 2.0]);
    }
}
