//! Flat structure-of-arrays storage for per-object moments — the data layout
//! behind the scalar-aggregate delta-`J` kernel.
//!
//! # Why an arena
//!
//! UCPC's entire `O(I·k·n·m)` cost (Proposition 5) is the inner
//! candidate-relocation evaluation. With per-object [`Moments`] stored as
//! three separately heap-allocated slices, every candidate evaluation chases
//! pointers into small scattered allocations and re-reads `mu`, `mu_2` and
//! `sigma^2` once per cluster statistic it updates. [`MomentArena`] stores
//! the moments of a whole dataset as three contiguous row-major `n × m`
//! matrices plus three per-object scalar columns, so the hot loop touches one
//! contiguous row per object and a handful of scalars.
//!
//! # The dot-product form of the Corollary-1 update
//!
//! Theorem 3 writes the cluster objective in per-dimension sufficient
//! statistics (`s_j = Σ_{o∈C} mu_j(o)` is the signed mean sum whose square is
//! the theorem's `Υ_j`):
//!
//! ```text
//! J(C) = Σ_j ( Ψ_j/|C| + Φ_j − s_j²/|C| )
//!      = Ψ_tot/|C| + Φ_tot − S₂/|C|,
//! ```
//!
//! where `Ψ_tot = Σ_j Ψ_j`, `Φ_tot = Σ_j Φ_j` and `S₂ = Σ_j s_j²` are plain
//! scalars. Corollary 1 updates each `Ψ_j`, `Φ_j`, `s_j` in O(1) per
//! dimension; summing those updates over `j` shows how the three aggregates
//! move when one object `o` joins `C`:
//!
//! ```text
//! Ψ_tot' = Ψ_tot + Σ_j sigma²_j(o)          (the scalar `sum_var(o)`)
//! Φ_tot' = Φ_tot + Σ_j (mu_2)_j(o)          (the scalar `sum_mu2(o)`)
//! S₂'    = Σ_j (s_j + mu_j(o))²
//!        = S₂ + 2·Σ_j s_j·mu_j(o) + Σ_j mu_j(o)²
//!        = S₂ + 2·⟨s, mu(o)⟩ + sum_mu_sq(o),
//! ```
//!
//! and symmetrically with flipped signs when `o` leaves. Every term except
//! `⟨s, mu(o)⟩` is a precomputed per-object scalar, so the full objective
//! change of a candidate relocation collapses to **one fused dot product**
//! between the cluster's flat mean-sum vector `s` and the object's contiguous
//! `mu` row — a single O(m) pass, dispatched at run time to an explicit
//! AVX2/NEON kernel by [`crate::simd`] — instead of the naive three O(m)
//! sweeps (`J(C−o)`, `J(C+o)` per candidate cluster, against ~6
//! array reads and 7 flops per dimension each). The same algebra applied to
//! Lemma 1 (`J_UK = Φ_tot − S₂/|C|`) and Proposition 2 (`J_MM = J_UK/|C|`)
//! yields the UK-means and MMVar kernels.
//!
//! The per-object scalars needed by these updates are exactly the columns the
//! arena precomputes at construction:
//!
//! * `sum_mu_sq(o) = Σ_j mu_j(o)²`,
//! * `sum_mu2(o)  = Σ_j (mu_2)_j(o)` (the object's contribution to `Φ_tot`),
//! * `sum_var(o)  = Σ_j sigma²_j(o)` (Eq. 6's global variance; the
//!   contribution to `Ψ_tot`).
//!
//! [`MomentView`] bundles one object's rows and scalars; `ClusterStats` in
//! `ucpc-core` consumes views through its `delta_j_*` methods and keeps the
//! original per-dimension sweeps as the `naive` reference path.

use crate::moments::Moments;
use crate::object::UncertainObject;

/// Borrowed view of one object's moment rows plus its precomputed scalar
/// aggregates — the unit of work of the delta-`J` kernel.
#[derive(Debug, Clone, Copy)]
pub struct MomentView<'a> {
    /// Expected values `mu_j(o)` (contiguous, length `m`).
    pub mu: &'a [f64],
    /// Second-order moments `(mu_2)_j(o)`.
    pub mu2: &'a [f64],
    /// Variances `sigma²_j(o)`.
    pub var: &'a [f64],
    /// `Σ_j mu_j(o)²`.
    pub sum_mu_sq: f64,
    /// `Σ_j (mu_2)_j(o)` — the object's contribution to `Φ_tot`.
    pub sum_mu2: f64,
    /// `Σ_j sigma²_j(o)` — Eq. (6); the object's contribution to `Ψ_tot`.
    pub sum_var: f64,
    /// `‖mu(o)‖ = sqrt(Σ_j mu_j(o)²)` — the Cauchy–Schwarz factor the
    /// candidate-pruning drift bounds multiply against (see
    /// `ucpc_core::pruning`).
    pub norm_mu: f64,
}

impl MomentView<'_> {
    /// Number of dimensions `m`.
    pub fn dims(&self) -> usize {
        self.mu.len()
    }
}

/// Contiguous row-major SoA storage of the moments of `n` objects over `m`
/// dimensions, with precomputed per-object scalar aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentArena {
    n: usize,
    m: usize,
    mu: Vec<f64>,
    mu2: Vec<f64>,
    var: Vec<f64>,
    sum_mu_sq: Vec<f64>,
    sum_mu2: Vec<f64>,
    sum_var: Vec<f64>,
    norm_mu: Vec<f64>,
}

impl MomentArena {
    /// Builds the arena from a dataset of uncertain objects. All objects must
    /// share one dimensionality (callers validate through
    /// `ucpc_core::framework::validate_input`; this panics otherwise).
    pub fn from_objects(data: &[UncertainObject]) -> Self {
        Self::from_moments(data.iter().map(UncertainObject::moments))
    }

    /// Builds the arena from an iterator of per-object moments.
    pub fn from_moments<'a>(moments: impl IntoIterator<Item = &'a Moments>) -> Self {
        let mut arena = Self {
            n: 0,
            m: 0,
            mu: Vec::new(),
            mu2: Vec::new(),
            var: Vec::new(),
            sum_mu_sq: Vec::new(),
            sum_mu2: Vec::new(),
            sum_var: Vec::new(),
            norm_mu: Vec::new(),
        };
        for mo in moments {
            arena.push(mo);
        }
        arena
    }

    /// An empty arena with `n` rows of `m` dimensions pre-reserved — the
    /// entry point of the arena-native batch pipeline (e.g.
    /// `ucpc_datasets::uncertainty::PdfAssignment::assign_into_arena`),
    /// which fills rows with zero further heap allocations.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut arena = Self::from_moments([]);
        arena.reserve_rows(n, m);
        arena
    }

    /// Reserves space for `additional` more rows of `dims` dimensions. Sets
    /// the arena's dimensionality when it is still empty and unset; panics
    /// if `dims` contradicts rows already present.
    pub fn reserve_rows(&mut self, additional: usize, dims: usize) {
        self.prepare_dims(dims);
        self.mu.reserve(additional * dims);
        self.mu2.reserve(additional * dims);
        self.var.reserve(additional * dims);
        self.sum_mu_sq.reserve(additional);
        self.sum_mu2.reserve(additional);
        self.sum_var.reserve(additional);
        self.norm_mu.reserve(additional);
    }

    /// Number of rows the arena can hold before any of its columns
    /// reallocates — the invariant the zero-allocation batch-pipeline test
    /// checks around a reserved fill.
    pub fn row_capacity(&self) -> usize {
        let per_row = self.m.max(1);
        (self.mu.capacity() / per_row)
            .min(self.mu2.capacity() / per_row)
            .min(self.var.capacity() / per_row)
            .min(self.sum_mu_sq.capacity())
            .min(self.sum_mu2.capacity())
            .min(self.sum_var.capacity())
            .min(self.norm_mu.capacity())
    }

    /// Appends one object's moments as a new row.
    pub fn push(&mut self, mo: &Moments) {
        self.prepare_dims(mo.dims());
        self.mu.extend_from_slice(mo.mu());
        self.mu2.extend_from_slice(mo.mu2());
        self.var.extend_from_slice(mo.variance());
        self.sum_mu_sq.push(mo.sum_mu_sq());
        self.sum_mu2.push(mo.sum_mu2());
        self.sum_var.push(mo.total_variance());
        self.norm_mu.push(mo.norm_mu());
        self.n += 1;
    }

    /// Appends one row *without* a [`Moments`] value: `fill(j)` yields the
    /// dimension's `(mu_j, (mu_2)_j)` pair and the arena derives the
    /// variance (`(mu_2 − mu²)⁺`, Eq. 5 with the same
    /// cancellation clamp as [`Moments::from_mu_mu2`]) and the scalar
    /// aggregates in the same per-dimension fold order — so a row built here
    /// is bit-identical to pushing the equivalent `Moments`. This is the
    /// batch pipeline's write path: no per-object vectors exist, and with
    /// capacity reserved ([`Self::with_capacity`] / [`Self::reserve_rows`])
    /// the fill performs no heap allocation at all.
    pub fn push_row_with(&mut self, dims: usize, fill: impl FnMut(usize) -> (f64, f64)) {
        self.prepare_dims(dims);
        let (sum_mu_sq, sum_mu2, sum_var) = fold_row(dims, fill, |_, mu, mu2, var| {
            self.mu.push(mu);
            self.mu2.push(mu2);
            self.var.push(var);
        });
        self.sum_mu_sq.push(sum_mu_sq);
        self.sum_mu2.push(sum_mu2);
        self.sum_var.push(sum_var);
        self.norm_mu.push(sum_mu_sq.sqrt());
        self.n += 1;
    }

    /// Overwrites row `i` in place with another object's moments, scalar
    /// columns included — no column grows or reallocates. The bits written
    /// are exactly the ones [`Self::push`] would have appended, so a reused
    /// row is indistinguishable from a freshly pushed one; this is the
    /// in-place half of the slab free-list reuse contract
    /// (see [`crate::slab::SlabArena`]).
    pub fn overwrite_row(&mut self, i: usize, mo: &Moments) {
        assert!(i < self.n, "row {i} out of bounds (n = {})", self.n);
        assert_eq!(
            mo.dims(),
            self.m,
            "arena rows must share one dimensionality"
        );
        let row = i * self.m..(i + 1) * self.m;
        self.mu[row.clone()].copy_from_slice(mo.mu());
        self.mu2[row.clone()].copy_from_slice(mo.mu2());
        self.var[row].copy_from_slice(mo.variance());
        self.sum_mu_sq[i] = mo.sum_mu_sq();
        self.sum_mu2[i] = mo.sum_mu2();
        self.sum_var[i] = mo.total_variance();
        self.norm_mu[i] = mo.norm_mu();
    }

    /// Appends one row copied **verbatim** from a kernel view — the
    /// [`MomentView`]-sourced counterpart of [`Self::push`], writing the
    /// same bits `push` would write for the `Moments` behind the view
    /// (variance row and all four scalars copied, never re-derived). This
    /// lets a row hop between arenas — e.g. from a serving layer's staging
    /// ring into a slab store — without materialising an owned `Moments`
    /// and without perturbing a single bit.
    pub fn push_row_view(&mut self, v: &MomentView<'_>) {
        self.prepare_dims(v.dims());
        self.mu.extend_from_slice(v.mu);
        self.mu2.extend_from_slice(v.mu2);
        self.var.extend_from_slice(v.var);
        self.sum_mu_sq.push(v.sum_mu_sq);
        self.sum_mu2.push(v.sum_mu2);
        self.sum_var.push(v.sum_var);
        self.norm_mu.push(v.norm_mu);
        self.n += 1;
    }

    /// Overwrites row `i` in place copied **verbatim** from a kernel view —
    /// the [`MomentView`]-sourced counterpart of [`Self::overwrite_row`],
    /// with the same bit-for-bit copy contract as [`Self::push_row_view`].
    pub fn overwrite_row_view(&mut self, i: usize, v: &MomentView<'_>) {
        assert!(i < self.n, "row {i} out of bounds (n = {})", self.n);
        assert_eq!(v.dims(), self.m, "arena rows must share one dimensionality");
        let row = i * self.m..(i + 1) * self.m;
        self.mu[row.clone()].copy_from_slice(v.mu);
        self.mu2[row.clone()].copy_from_slice(v.mu2);
        self.var[row].copy_from_slice(v.var);
        self.sum_mu_sq[i] = v.sum_mu_sq;
        self.sum_mu2[i] = v.sum_mu2;
        self.sum_var[i] = v.sum_var;
        self.norm_mu[i] = v.norm_mu;
    }

    /// Overwrites row `i` in place from a `(mu_j, (mu_2)_j)` fill closure —
    /// the in-place counterpart of [`Self::push_row_with`], with the
    /// identical per-dimension fold order for the derived variance and
    /// scalar aggregates, so an overwritten row is bit-identical to the row
    /// `push_row_with` would have appended from the same fill.
    pub fn overwrite_row_with(
        &mut self,
        i: usize,
        dims: usize,
        fill: impl FnMut(usize) -> (f64, f64),
    ) {
        assert!(i < self.n, "row {i} out of bounds (n = {})", self.n);
        assert_eq!(dims, self.m, "arena rows must share one dimensionality");
        let base = i * self.m;
        let (sum_mu_sq, sum_mu2, sum_var) = fold_row(dims, fill, |j, mu, mu2, var| {
            self.mu[base + j] = mu;
            self.mu2[base + j] = mu2;
            self.var[base + j] = var;
        });
        self.sum_mu_sq[i] = sum_mu_sq;
        self.sum_mu2[i] = sum_mu2;
        self.sum_var[i] = sum_var;
        self.norm_mu[i] = sum_mu_sq.sqrt();
    }

    /// Pins the arena's dimensionality on the first row (with a small
    /// warm-up reservation when nothing was pre-reserved) and checks it on
    /// every later one.
    fn prepare_dims(&mut self, dims: usize) {
        if self.n == 0 && self.m == 0 {
            self.m = dims;
            if self.mu.capacity() == 0 {
                let hint = 64 * dims;
                self.mu.reserve(hint);
                self.mu2.reserve(hint);
                self.var.reserve(hint);
            }
        }
        assert_eq!(dims, self.m, "arena rows must share one dimensionality");
    }

    /// Number of objects `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arena holds no objects.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of dimensions `m` (0 until the first row is pushed).
    pub fn dims(&self) -> usize {
        self.m
    }

    /// The `mu` row of object `i` (contiguous slice of length `m`).
    pub fn mu_row(&self, i: usize) -> &[f64] {
        &self.mu[i * self.m..(i + 1) * self.m]
    }

    /// The whole `mu` matrix, row-major (`n × m`, row `i` at
    /// `i*m..(i+1)*m`) — the flat operand batched kernels
    /// ([`crate::simd::dot_block`]) index by row number.
    pub fn mu_flat(&self) -> &[f64] {
        &self.mu
    }

    /// The `mu_2` row of object `i`.
    pub fn mu2_row(&self, i: usize) -> &[f64] {
        &self.mu2[i * self.m..(i + 1) * self.m]
    }

    /// The variance row of object `i`.
    pub fn var_row(&self, i: usize) -> &[f64] {
        &self.var[i * self.m..(i + 1) * self.m]
    }

    /// `Σ_j mu_j(o_i)²`.
    pub fn sum_mu_sq(&self, i: usize) -> f64 {
        self.sum_mu_sq[i]
    }

    /// `Σ_j (mu_2)_j(o_i)`.
    pub fn sum_mu2(&self, i: usize) -> f64 {
        self.sum_mu2[i]
    }

    /// `Σ_j sigma²_j(o_i)` (the object's global variance, Eq. 6).
    pub fn sum_var(&self, i: usize) -> f64 {
        self.sum_var[i]
    }

    /// `‖mu(o_i)‖` — the precomputed mean-vector norm consumed by the
    /// pruning drift bounds.
    pub fn norm_mu(&self, i: usize) -> f64 {
        self.norm_mu[i]
    }

    /// The kernel view of object `i`: its three rows plus the scalars.
    pub fn view(&self, i: usize) -> MomentView<'_> {
        let row = i * self.m..(i + 1) * self.m;
        MomentView {
            mu: &self.mu[row.clone()],
            mu2: &self.mu2[row.clone()],
            var: &self.var[row],
            sum_mu_sq: self.sum_mu_sq[i],
            sum_mu2: self.sum_mu2[i],
            sum_var: self.sum_var[i],
            norm_mu: self.norm_mu[i],
        }
    }
}

/// The one canonical per-row fold behind [`MomentArena::push_row_with`]
/// and [`MomentArena::overwrite_row_with`]: derives each dimension's
/// variance (`(mu_2 − mu²)⁺`, the same cancellation clamp as
/// [`Moments::from_mu_mu2`]), hands the triple to `write`, and accumulates
/// the scalar aggregates in dimension order. Appended and overwritten rows
/// are bit-identical *because this fold exists exactly once* — the two
/// write paths differ only in where `write` puts the values.
#[inline]
fn fold_row(
    dims: usize,
    mut fill: impl FnMut(usize) -> (f64, f64),
    mut write: impl FnMut(usize, f64, f64, f64),
) -> (f64, f64, f64) {
    let mut sum_mu_sq = 0.0f64;
    let mut sum_mu2 = 0.0f64;
    let mut sum_var = 0.0f64;
    for j in 0..dims {
        let (mu, mu2) = fill(j);
        let var = (mu2 - mu * mu).max(0.0);
        write(j, mu, mu2, var);
        sum_mu_sq += mu * mu;
        sum_mu2 += mu2;
        sum_var += var;
    }
    (sum_mu_sq, sum_mu2, sum_var)
}

/// Fused dot product `⟨a, b⟩` — the kernel's single O(m) pass, dispatched
/// at run time to the best SIMD backend the machine supports (see
/// [`crate::simd`] for the backend set, the `UCPC_SIMD` knob, and the
/// bit-identity contract between backends).
///
/// This is the dot product of the Corollary-1 update: with `s` a cluster's
/// per-dimension mean sums, the objective change of adding an object `o`
/// needs exactly `⟨s, mu(o)⟩` beyond precomputed scalars (module docs above
/// derive this). End to end:
///
/// ```
/// use ucpc_uncertain::arena::{dot, MomentArena};
/// use ucpc_uncertain::Moments;
///
/// let arena = MomentArena::from_moments([
///     &Moments::of_point(&[1.0, 2.0]),
///     &Moments::of_point(&[3.0, -1.0]),
/// ]);
///
/// // Cluster C = {o_0}: mean-sum vector s = mu(o_0); candidate o = o_1.
/// let s = arena.mu_row(0).to_vec();
/// let o = arena.view(1);
///
/// // Corollary 1 in scalar-aggregate form: S₂' = S₂ + 2⟨s, mu(o)⟩ + Σ mu(o)²
/// let s_sq: f64 = s.iter().map(|x| x * x).sum();
/// let s_sq_new = s_sq + 2.0 * dot(&s, o.mu) + o.sum_mu_sq;
///
/// // ... which must equal Σ_j (s_j + mu_j(o))² computed from scratch.
/// let rebuilt: f64 = s
///     .iter()
///     .zip(o.mu)
///     .map(|(sj, mj)| (sj + mj) * (sj + mj))
///     .sum();
/// assert!((s_sq_new - rebuilt).abs() < 1e-12);
/// ```
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    crate::simd::dot(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdf::UnivariatePdf;

    fn objects() -> Vec<UncertainObject> {
        vec![
            UncertainObject::new(vec![
                UnivariatePdf::normal(1.0, 0.5),
                UnivariatePdf::uniform_centered(-2.0, 1.0),
                UnivariatePdf::normal(0.25, 2.0),
            ]),
            UncertainObject::new(vec![
                UnivariatePdf::exponential_with_mean(0.5, 1.5),
                UnivariatePdf::normal(3.0, 0.1),
                UnivariatePdf::PointMass { x: -4.0 },
            ]),
        ]
    }

    #[test]
    fn rows_match_per_object_moments() {
        let objs = objects();
        let arena = MomentArena::from_objects(&objs);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.dims(), 3);
        for (i, o) in objs.iter().enumerate() {
            assert_eq!(arena.mu_row(i), o.mu());
            assert_eq!(arena.mu2_row(i), o.mu2());
            assert_eq!(arena.var_row(i), o.variance());
        }
    }

    #[test]
    fn scalars_match_row_sums() {
        let objs = objects();
        let arena = MomentArena::from_objects(&objs);
        for i in 0..arena.len() {
            let mu_sq: f64 = arena.mu_row(i).iter().map(|&x| x * x).sum();
            let mu2: f64 = arena.mu2_row(i).iter().sum();
            let var: f64 = arena.var_row(i).iter().sum();
            assert!((arena.sum_mu_sq(i) - mu_sq).abs() < 1e-12);
            assert!((arena.sum_mu2(i) - mu2).abs() < 1e-12);
            assert!((arena.sum_var(i) - var).abs() < 1e-12);
            assert!((arena.norm_mu(i) - mu_sq.sqrt()).abs() < 1e-12);
            let v = arena.view(i);
            assert_eq!(v.dims(), 3);
            assert_eq!(v.mu, arena.mu_row(i));
            assert!((v.sum_mu_sq - mu_sq).abs() < 1e-12);
        }
    }

    #[test]
    fn view_agrees_with_moments_view() {
        let objs = objects();
        let arena = MomentArena::from_objects(&objs);
        for (i, o) in objs.iter().enumerate() {
            let a = arena.view(i);
            let m = o.moments().view();
            assert_eq!(a.mu, m.mu);
            assert_eq!(a.mu2, m.mu2);
            assert_eq!(a.var, m.var);
            assert!((a.sum_mu_sq - m.sum_mu_sq).abs() < 1e-12);
            assert!((a.sum_mu2 - m.sum_mu2).abs() < 1e-12);
            assert!((a.sum_var - m.sum_var).abs() < 1e-12);
        }
    }

    #[test]
    fn dot_matches_naive_for_all_lengths() {
        for n in 0..64usize {
            let a: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 3.0).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.0 - (i as f64) * 0.25).collect();
            let naive: f64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-9, "length {n}");
        }
    }

    #[test]
    fn push_row_with_is_bit_identical_to_pushing_moments() {
        let objs = objects();
        let reference = MomentArena::from_objects(&objs);
        let mut built = MomentArena::with_capacity(objs.len(), 3);
        for o in &objs {
            let mo = o.moments();
            built.push_row_with(3, |j| (mo.mu()[j], mo.mu2()[j]));
        }
        assert_eq!(built, reference);
    }

    #[test]
    fn reserved_fill_never_reallocates() {
        let n = 100;
        let mut arena = MomentArena::with_capacity(n, 4);
        let cap = arena.row_capacity();
        assert!(cap >= n);
        for i in 0..n {
            arena.push_row_with(4, |j| {
                let mu = (i * 4 + j) as f64 * 0.25 - 3.0;
                (mu, mu * mu + 0.5)
            });
        }
        assert_eq!(arena.len(), n);
        assert_eq!(
            arena.row_capacity(),
            cap,
            "filling a reserved arena must not grow any column"
        );
    }

    #[test]
    fn reserve_rows_extends_an_existing_arena() {
        let mut arena = MomentArena::from_objects(&objects());
        arena.reserve_rows(500, 3);
        let cap = arena.row_capacity();
        assert!(cap >= arena.len() + 500);
        for _ in 0..500 {
            arena.push_row_with(3, |j| (j as f64, j as f64 * j as f64 + 1.0));
        }
        assert_eq!(arena.row_capacity(), cap);
    }

    #[test]
    fn overwrite_row_matches_push_bit_for_bit() {
        let objs = objects();
        let reference = MomentArena::from_objects(&objs);
        // Build an arena with the rows swapped, then overwrite both rows
        // back: the result must equal the straight-pushed reference exactly.
        let mut arena = MomentArena::from_moments([objs[1].moments(), objs[0].moments()]);
        arena.overwrite_row(0, objs[0].moments());
        arena.overwrite_row(1, objs[1].moments());
        assert_eq!(arena, reference);
    }

    #[test]
    fn overwrite_row_with_matches_push_row_with() {
        let objs = objects();
        let reference = MomentArena::from_objects(&objs);
        let mut arena = MomentArena::from_objects(&objs);
        // Scribble over row 0, then rebuild it through the fill closure.
        arena.overwrite_row_with(0, 3, |_| (1234.5, 1234.5 * 1234.5 + 1.0));
        assert_ne!(arena, reference);
        let mo = objs[0].moments();
        arena.overwrite_row_with(0, 3, |j| (mo.mu()[j], mo.mu2()[j]));
        assert_eq!(arena, reference);
    }

    #[test]
    fn view_writers_match_moments_writers_bit_for_bit() {
        let objs = objects();
        let reference = MomentArena::from_objects(&objs);
        // push_row_view from Moments views.
        let mut pushed = MomentArena::with_capacity(objs.len(), 3);
        for o in &objs {
            pushed.push_row_view(&o.moments().view());
        }
        assert_eq!(pushed, reference);
        // overwrite_row_view from another arena's row views.
        let mut arena = MomentArena::from_moments([objs[1].moments(), objs[0].moments()]);
        let v0 = reference.view(0);
        let v1 = reference.view(1);
        arena.overwrite_row_view(0, &v0);
        arena.overwrite_row_view(1, &v1);
        assert_eq!(arena, reference);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overwrite_out_of_bounds_panics() {
        let mut arena = MomentArena::from_objects(&objects());
        let mo = Moments::of_point(&[1.0, 2.0, 3.0]);
        arena.overwrite_row(2, &mo);
    }

    #[test]
    #[should_panic(expected = "share one dimensionality")]
    fn mixed_dimensionality_panics() {
        let mut arena = MomentArena::from_objects(&objects());
        let one_dim = Moments::of_point(&[1.0]);
        arena.push(&one_dim);
    }
}
