//! Sampling substrate: Monte Carlo and Markov-Chain Monte Carlo.
//!
//! The paper's uncertainty-generation step (Section 5.1) perturbs each
//! deterministic point with noise "sampled from its assigned pdf according to
//! the classic Monte Carlo and Markov Chain Monte Carlo methods", using the
//! SSJ library. SSJ is not available here, so this module implements both
//! samplers:
//!
//! * [`monte_carlo`] — direct inverse-CDF draws (exact);
//! * [`Metropolis`] — a random-walk Metropolis–Hastings chain targeting an
//!   arbitrary density, used where only a density (not a quantile function)
//!   is available and to exercise the same code path the paper's MCMC option
//!   exercised.
//!
//! [`SampleCache`] precomputes a fixed-size sample matrix per uncertain
//! object; the sample-based baselines (basic UK-means, the pruning variants,
//! FDBSCAN, FOPTICS) all draw from the cache so their per-iteration cost
//! matches the paper's complexity accounting (`S` = cache size).

use crate::object::UncertainObject;
use rand::Rng;

/// Draws `n` independent realizations of `object` by inverse-CDF Monte Carlo.
pub fn monte_carlo<R: Rng + ?Sized>(
    object: &UncertainObject,
    n: usize,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    object.sample_n(rng, n)
}

/// A random-walk Metropolis–Hastings sampler over a univariate density.
///
/// The proposal is Gaussian with the configured step size; the chain is
/// burned in before the first returned sample and thinned between samples to
/// reduce autocorrelation.
#[derive(Debug, Clone)]
pub struct Metropolis {
    step: f64,
    burn_in: usize,
    thin: usize,
}

impl Default for Metropolis {
    fn default() -> Self {
        Self {
            step: 1.0,
            burn_in: 200,
            thin: 5,
        }
    }
}

impl Metropolis {
    /// Creates a sampler with the given proposal step size, burn-in length
    /// and thinning interval.
    pub fn new(step: f64, burn_in: usize, thin: usize) -> Self {
        assert!(step > 0.0, "step must be positive");
        assert!(thin > 0, "thinning interval must be at least 1");
        Self {
            step,
            burn_in,
            thin,
        }
    }

    /// Runs the chain against `density`, starting at `init`, returning `n`
    /// (burned-in, thinned) samples.
    pub fn sample<R: Rng + ?Sized, F: Fn(f64) -> f64>(
        &self,
        density: F,
        init: f64,
        n: usize,
        rng: &mut R,
    ) -> Vec<f64> {
        let mut x = init;
        let mut fx = density(x).max(f64::MIN_POSITIVE);
        let mut out = Vec::with_capacity(n);
        let total = self.burn_in + n * self.thin;
        for i in 0..total {
            // Gaussian proposal via Box-Muller to avoid a distribution dep.
            let (u1, u2): (f64, f64) = (rng.gen::<f64>().max(1e-300), rng.gen());
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let cand = x + self.step * z;
            let fc = density(cand);
            if fc > 0.0 && rng.gen::<f64>() < (fc / fx).min(1.0) {
                x = cand;
                fx = fc;
            }
            if i >= self.burn_in && (i - self.burn_in).is_multiple_of(self.thin) {
                out.push(x);
            }
        }
        out
    }

    /// Samples a full multivariate realization of `object` by running one
    /// chain per dimension (dimensions are independent in the model).
    pub fn sample_object<R: Rng + ?Sized>(
        &self,
        object: &UncertainObject,
        n: usize,
        rng: &mut R,
    ) -> Vec<Vec<f64>> {
        let m = object.dims();
        let per_dim: Vec<Vec<f64>> = (0..m)
            .map(|j| {
                let pdf = object.pdf(j).clone();
                let init = object.mu()[j];
                self.sample(move |x| pdf.density(x), init, n, rng)
            })
            .collect();
        (0..n)
            .map(|i| per_dim.iter().map(|col| col[i]).collect())
            .collect()
    }
}

/// Precomputed realizations of a set of uncertain objects.
///
/// Sample-based algorithms index this cache instead of re-sampling: the cost
/// model of the paper (`O(I S k n m)` for the basic UK-means) counts `S`
/// sample accesses, not `S` pdf inversions, per expected-distance evaluation.
#[derive(Debug, Clone)]
pub struct SampleCache {
    samples: Vec<Vec<Vec<f64>>>,
    per_object: usize,
}

impl SampleCache {
    /// Draws `per_object` Monte Carlo samples for every object.
    pub fn build<R: Rng + ?Sized>(
        objects: &[UncertainObject],
        per_object: usize,
        rng: &mut R,
    ) -> Self {
        assert!(per_object > 0, "need at least one sample per object");
        let samples = objects
            .iter()
            .map(|o| o.sample_n(rng, per_object))
            .collect();
        Self {
            samples,
            per_object,
        }
    }

    /// Number of cached samples per object (`S`).
    pub fn per_object(&self) -> usize {
        self.per_object
    }

    /// Number of objects covered.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sample matrix of object `i` (rows are realizations).
    pub fn of(&self, i: usize) -> &[Vec<f64>] {
        &self.samples[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdf::UnivariatePdf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn obj() -> UncertainObject {
        UncertainObject::new(vec![
            UnivariatePdf::normal(2.0, 1.0),
            UnivariatePdf::uniform_centered(-1.0, 2.0),
        ])
    }

    #[test]
    fn monte_carlo_matches_moments() {
        let o = obj();
        let mut rng = StdRng::seed_from_u64(17);
        let samples = monte_carlo(&o, 200_000, &mut rng);
        let mean0: f64 = samples.iter().map(|s| s[0]).sum::<f64>() / samples.len() as f64;
        let mean1: f64 = samples.iter().map(|s| s[1]).sum::<f64>() / samples.len() as f64;
        assert!((mean0 - 2.0).abs() < 1e-2);
        assert!((mean1 + 1.0).abs() < 1e-2);
    }

    #[test]
    fn metropolis_targets_the_density() {
        let pdf = UnivariatePdf::normal(0.0, 1.0);
        let mcmc = Metropolis::new(1.5, 500, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let xs = mcmc.sample(|x| pdf.density(x), 0.0, 30_000, &mut rng);
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "MCMC mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "MCMC variance {var}");
    }

    #[test]
    fn metropolis_respects_truncated_support() {
        let pdf = UnivariatePdf::normal(0.0, 1.0).truncate(crate::region::Interval::new(-0.5, 1.5));
        let mcmc = Metropolis::default();
        let mut rng = StdRng::seed_from_u64(6);
        for x in mcmc.sample(|x| pdf.density(x), 0.5, 2_000, &mut rng) {
            assert!((-0.5..=1.5).contains(&x), "MCMC sample {x} escaped support");
        }
    }

    #[test]
    fn metropolis_object_sampling_shape() {
        let o = obj();
        let mcmc = Metropolis::default();
        let mut rng = StdRng::seed_from_u64(7);
        let s = mcmc.sample_object(&o, 50, &mut rng);
        assert_eq!(s.len(), 50);
        assert!(s.iter().all(|row| row.len() == 2));
    }

    #[test]
    fn sample_cache_shape_and_indexing() {
        let objects = vec![obj(), UncertainObject::deterministic(&[0.0, 0.0])];
        let mut rng = StdRng::seed_from_u64(8);
        let cache = SampleCache::build(&objects, 64, &mut rng);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.per_object(), 64);
        assert_eq!(cache.of(0).len(), 64);
        // Deterministic object: every sample is the point itself.
        assert!(cache.of(1).iter().all(|s| s == &vec![0.0, 0.0]));
    }
}
