//! Univariate probability density functions of the uncertainty model.
//!
//! The paper's experiments (Section 5.1) attach to every deterministic point a
//! pdf of one of three families — Uniform, Normal, Exponential — whose expected
//! value equals the point, and then restrict the object's domain region to the
//! area containing "most (e.g. 95%) of the pdf mass". [`UnivariatePdf`]
//! implements those families plus the degenerate point mass (deterministic
//! data, Case 1 of the evaluation) and an empirical discrete pdf (arbitrary
//! sampled distributions), together with *exact* first and second moments for
//! every variant, including the truncated ones.
//!
//! All moments are closed-form; nothing in this module ever samples to obtain
//! a moment. Sampling is inverse-CDF based and therefore exact for the
//! truncated variants as well.

use crate::math::{std_normal_cdf, std_normal_pdf, std_normal_quantile};
use crate::region::Interval;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Families of univariate pdfs, as used for uncertainty generation in the
/// paper's Section 5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PdfFamily {
    /// Degenerate (deterministic) distribution.
    PointMass,
    /// Uniform over an interval.
    Uniform,
    /// Normal, possibly truncated.
    Normal,
    /// Shifted Exponential, possibly truncated.
    Exponential,
    /// Empirical discrete distribution.
    Discrete,
}

impl std::fmt::Display for PdfFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PdfFamily::PointMass => "point-mass",
            PdfFamily::Uniform => "uniform",
            PdfFamily::Normal => "normal",
            PdfFamily::Exponential => "exponential",
            PdfFamily::Discrete => "discrete",
        };
        f.write_str(s)
    }
}

/// A univariate pdf with exact moments, inverse-CDF sampling, and
/// region-truncation.
///
/// Multivariate uncertain objects combine one `UnivariatePdf` per dimension
/// under the per-dimension independence assumption standard in the uncertain
/// clustering literature (and sufficient for all moment-based formulas of the
/// paper, which only ever consume per-dimension `mu`, `mu2`, `sigma^2`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UnivariatePdf {
    /// Deterministic value: all mass at `x`.
    PointMass {
        /// Location of the atom.
        x: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower endpoint.
        lo: f64,
        /// Upper endpoint (must exceed `lo`).
        hi: f64,
    },
    /// Normal with mean `mean` and standard deviation `sd > 0`.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        sd: f64,
    },
    /// Normal truncated to `[lo, hi]` (renormalized).
    TruncatedNormal {
        /// Mean of the *parent* (untruncated) Normal.
        mean: f64,
        /// Standard deviation of the parent Normal.
        sd: f64,
        /// Lower truncation point.
        lo: f64,
        /// Upper truncation point.
        hi: f64,
    },
    /// Shifted Exponential: density `rate * exp(-rate (x - origin))` for
    /// `x >= origin`. Its mean is `origin + 1/rate`.
    Exponential {
        /// Left endpoint of the support.
        origin: f64,
        /// Rate `lambda > 0`.
        rate: f64,
    },
    /// Shifted Exponential truncated to `[origin, hi]` (renormalized).
    TruncatedExponential {
        /// Left endpoint of the support.
        origin: f64,
        /// Rate `lambda > 0`.
        rate: f64,
        /// Upper truncation point (must exceed `origin`).
        hi: f64,
    },
    /// Empirical discrete pdf over weighted atoms, kept sorted by location.
    /// Weights are normalized at construction.
    Discrete {
        /// Atom locations, ascending.
        xs: Vec<f64>,
        /// Atom probabilities, same length as `xs`, summing to 1.
        ws: Vec<f64>,
    },
}

impl UnivariatePdf {
    /// Uniform pdf centered on `mean` with half-width `h > 0`
    /// (so that its expected value is exactly `mean`, per Section 5.1).
    pub fn uniform_centered(mean: f64, h: f64) -> Self {
        assert!(h > 0.0, "uniform half-width must be positive, got {h}");
        UnivariatePdf::Uniform {
            lo: mean - h,
            hi: mean + h,
        }
    }

    /// Normal pdf with the given mean and standard deviation.
    pub fn normal(mean: f64, sd: f64) -> Self {
        assert!(sd > 0.0, "normal sd must be positive, got {sd}");
        UnivariatePdf::Normal { mean, sd }
    }

    /// Shifted Exponential whose *expected value* is `mean`:
    /// origin is placed at `mean - 1/rate` (Section 5.1 requires
    /// `E[f_w] = w` for every generated pdf).
    pub fn exponential_with_mean(mean: f64, rate: f64) -> Self {
        assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
        UnivariatePdf::Exponential {
            origin: mean - 1.0 / rate,
            rate,
        }
    }

    /// Empirical pdf from weighted atoms. Weights must be non-negative with a
    /// positive sum; they are normalized. Atoms are sorted by location.
    pub fn discrete(points: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let mut atoms: Vec<(f64, f64)> = points.into_iter().collect();
        assert!(!atoms.is_empty(), "discrete pdf needs at least one atom");
        atoms.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: f64 = atoms.iter().map(|&(_, w)| w).sum();
        assert!(
            total > 0.0 && atoms.iter().all(|&(_, w)| w >= 0.0),
            "discrete pdf weights must be non-negative with positive sum"
        );
        let (xs, ws) = atoms.into_iter().map(|(x, w)| (x, w / total)).unzip();
        UnivariatePdf::Discrete { xs, ws }
    }

    /// Empirical pdf with equal weights on the given sample points.
    pub fn from_samples(samples: &[f64]) -> Self {
        Self::discrete(samples.iter().map(|&x| (x, 1.0)))
    }

    /// The family of this pdf.
    pub fn family(&self) -> PdfFamily {
        match self {
            UnivariatePdf::PointMass { .. } => PdfFamily::PointMass,
            UnivariatePdf::Uniform { .. } => PdfFamily::Uniform,
            UnivariatePdf::Normal { .. } | UnivariatePdf::TruncatedNormal { .. } => {
                PdfFamily::Normal
            }
            UnivariatePdf::Exponential { .. } | UnivariatePdf::TruncatedExponential { .. } => {
                PdfFamily::Exponential
            }
            UnivariatePdf::Discrete { .. } => PdfFamily::Discrete,
        }
    }

    /// Density at `x`. For [`UnivariatePdf::PointMass`] and
    /// [`UnivariatePdf::Discrete`] this is a probability *mass* (the value
    /// returned for an atom is its weight), which is the convention the
    /// sampling and MCMC substrates expect.
    pub fn density(&self, x: f64) -> f64 {
        match self {
            UnivariatePdf::PointMass { x: a } => {
                if x == *a {
                    1.0
                } else {
                    0.0
                }
            }
            UnivariatePdf::Uniform { lo, hi } => {
                if x >= *lo && x <= *hi {
                    1.0 / (hi - lo)
                } else {
                    0.0
                }
            }
            UnivariatePdf::Normal { mean, sd } => std_normal_pdf((x - mean) / sd) / sd,
            UnivariatePdf::TruncatedNormal { mean, sd, lo, hi } => {
                if x < *lo || x > *hi {
                    return 0.0;
                }
                let z = normal_mass(*mean, *sd, *lo, *hi);
                std_normal_pdf((x - mean) / sd) / (sd * z)
            }
            UnivariatePdf::Exponential { origin, rate } => {
                if x < *origin {
                    0.0
                } else {
                    rate * (-(rate * (x - origin))).exp()
                }
            }
            UnivariatePdf::TruncatedExponential { origin, rate, hi } => {
                if x < *origin || x > *hi {
                    return 0.0;
                }
                let z = 1.0 - (-(rate * (hi - origin))).exp();
                rate * (-(rate * (x - origin))).exp() / z
            }
            UnivariatePdf::Discrete { xs, ws } => xs
                .iter()
                .zip(ws)
                .filter(|&(&a, _)| a == x)
                .map(|(_, &w)| w)
                .sum(),
        }
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        match self {
            UnivariatePdf::PointMass { x: a } => {
                if x >= *a {
                    1.0
                } else {
                    0.0
                }
            }
            UnivariatePdf::Uniform { lo, hi } => ((x - lo) / (hi - lo)).clamp(0.0, 1.0),
            UnivariatePdf::Normal { mean, sd } => std_normal_cdf((x - mean) / sd),
            UnivariatePdf::TruncatedNormal { mean, sd, lo, hi } => {
                if x <= *lo {
                    return 0.0;
                }
                if x >= *hi {
                    return 1.0;
                }
                let a = std_normal_cdf((lo - mean) / sd);
                let b = std_normal_cdf((hi - mean) / sd);
                (std_normal_cdf((x - mean) / sd) - a) / (b - a)
            }
            UnivariatePdf::Exponential { origin, rate } => {
                if x <= *origin {
                    0.0
                } else {
                    1.0 - (-(rate * (x - origin))).exp()
                }
            }
            UnivariatePdf::TruncatedExponential { origin, rate, hi } => {
                if x <= *origin {
                    return 0.0;
                }
                if x >= *hi {
                    return 1.0;
                }
                let z = 1.0 - (-(rate * (hi - origin))).exp();
                (1.0 - (-(rate * (x - origin))).exp()) / z
            }
            UnivariatePdf::Discrete { xs, ws } => xs
                .iter()
                .zip(ws)
                .take_while(|&(&a, _)| a <= x)
                .map(|(_, &w)| w)
                .sum(),
        }
    }

    /// Quantile (generalized inverse CDF) at probability `p` in `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        match self {
            UnivariatePdf::PointMass { x } => *x,
            UnivariatePdf::Uniform { lo, hi } => lo + p * (hi - lo),
            UnivariatePdf::Normal { mean, sd } => mean + sd * std_normal_quantile(p),
            UnivariatePdf::TruncatedNormal { mean, sd, lo, hi } => {
                let a = std_normal_cdf((lo - mean) / sd);
                let b = std_normal_cdf((hi - mean) / sd);
                let q = mean + sd * std_normal_quantile(a + p * (b - a));
                q.clamp(*lo, *hi)
            }
            UnivariatePdf::Exponential { origin, rate } => {
                if p >= 1.0 {
                    f64::INFINITY
                } else {
                    origin - (1.0 - p).ln() / rate
                }
            }
            UnivariatePdf::TruncatedExponential { origin, rate, hi } => {
                let z = 1.0 - (-(rate * (hi - origin))).exp();
                let q = origin - (1.0 - p * z).ln() / rate;
                q.clamp(*origin, *hi)
            }
            UnivariatePdf::Discrete { xs, ws } => {
                let mut acc = 0.0;
                for (x, w) in xs.iter().zip(ws) {
                    acc += w;
                    if acc >= p - 1e-15 {
                        return *x;
                    }
                }
                *xs.last().expect("discrete pdf is non-empty")
            }
        }
    }

    /// Exact expected value `mu` (Eq. 4).
    pub fn mean(&self) -> f64 {
        match self {
            UnivariatePdf::PointMass { x } => *x,
            UnivariatePdf::Uniform { lo, hi } => 0.5 * (lo + hi),
            UnivariatePdf::Normal { mean, .. } => *mean,
            UnivariatePdf::TruncatedNormal { mean, sd, lo, hi } => {
                let alpha = (lo - mean) / sd;
                let beta = (hi - mean) / sd;
                let z = std_normal_cdf(beta) - std_normal_cdf(alpha);
                mean + sd * (std_normal_pdf(alpha) - std_normal_pdf(beta)) / z
            }
            UnivariatePdf::Exponential { origin, rate } => origin + 1.0 / rate,
            UnivariatePdf::TruncatedExponential { origin, rate, hi } => {
                // X = origin + Y with Y ~ Exp(rate) truncated to [0, c]:
                // E[Y] = 1/rate - c e^{-rate c} / (1 - e^{-rate c}).
                let c = hi - origin;
                let e = (-(rate * c)).exp();
                let z = 1.0 - e;
                origin + 1.0 / rate - c * e / z
            }
            UnivariatePdf::Discrete { xs, ws } => xs.iter().zip(ws).map(|(&x, &w)| x * w).sum(),
        }
    }

    /// Exact second-order moment `mu_2 = E[X^2]` (Eq. 4).
    pub fn second_moment(&self) -> f64 {
        match self {
            UnivariatePdf::PointMass { x } => x * x,
            UnivariatePdf::Uniform { lo, hi } => (lo * lo + lo * hi + hi * hi) / 3.0,
            UnivariatePdf::Normal { mean, sd } => mean * mean + sd * sd,
            UnivariatePdf::TruncatedNormal { .. } => {
                let m = self.mean();
                m * m + self.variance()
            }
            UnivariatePdf::Exponential { origin, rate } => {
                let m = origin + 1.0 / rate;
                m * m + 1.0 / (rate * rate)
            }
            UnivariatePdf::TruncatedExponential { origin, rate, hi } => {
                // X = origin + Y with Y ~ Exp(rate) truncated to [0, c]:
                // E[X^2] = origin^2 + 2 origin E[Y] + E[Y^2].
                let c = hi - origin;
                let e = (-(rate * c)).exp();
                let z = 1.0 - e;
                let ey = 1.0 / rate - c * e / z;
                let ey2 = exact_truncated_exp_second_moment(*rate, c, e, z);
                origin * origin + 2.0 * origin * ey + ey2
            }
            UnivariatePdf::Discrete { xs, ws } => xs.iter().zip(ws).map(|(&x, &w)| x * x * w).sum(),
        }
    }

    /// Exact variance `sigma^2 = mu_2 - mu^2` (Eq. 5).
    pub fn variance(&self) -> f64 {
        match self {
            UnivariatePdf::PointMass { .. } => 0.0,
            UnivariatePdf::Uniform { lo, hi } => {
                let w = hi - lo;
                w * w / 12.0
            }
            UnivariatePdf::Normal { sd, .. } => sd * sd,
            UnivariatePdf::TruncatedNormal { mean, sd, lo, hi } => {
                let alpha = (lo - mean) / sd;
                let beta = (hi - mean) / sd;
                let z = std_normal_cdf(beta) - std_normal_cdf(alpha);
                let pa = std_normal_pdf(alpha);
                let pb = std_normal_pdf(beta);
                let t1 = (alpha * pa - beta * pb) / z;
                let t2 = (pa - pb) / z;
                sd * sd * (1.0 + t1 - t2 * t2)
            }
            UnivariatePdf::Exponential { rate, .. } => 1.0 / (rate * rate),
            UnivariatePdf::TruncatedExponential { .. } => {
                let m = self.mean();
                (self.second_moment() - m * m).max(0.0)
            }
            UnivariatePdf::Discrete { .. } => {
                let m = self.mean();
                (self.second_moment() - m * m).max(0.0)
            }
        }
    }

    /// The support of the pdf as an interval. Unbounded supports return
    /// infinite endpoints; callers that need a finite region should use
    /// [`UnivariatePdf::central_region`].
    pub fn support(&self) -> Interval {
        match self {
            UnivariatePdf::PointMass { x } => Interval::point(*x),
            UnivariatePdf::Uniform { lo, hi } => Interval::new(*lo, *hi),
            UnivariatePdf::Normal { .. } => Interval::new(f64::NEG_INFINITY, f64::INFINITY),
            UnivariatePdf::TruncatedNormal { lo, hi, .. } => Interval::new(*lo, *hi),
            UnivariatePdf::Exponential { origin, .. } => Interval::new(*origin, f64::INFINITY),
            UnivariatePdf::TruncatedExponential { origin, hi, .. } => Interval::new(*origin, *hi),
            UnivariatePdf::Discrete { xs, .. } => Interval::new(
                *xs.first().expect("non-empty"),
                *xs.last().expect("non-empty"),
            ),
        }
    }

    /// The smallest probability-symmetric interval containing `coverage`
    /// (e.g. `0.95`) of the mass; for one-sided families (Exponential) the
    /// interval starts at the support's left endpoint.
    ///
    /// This is the "region containing most of the area of `f_w`" used to
    /// build uncertain objects in Section 5.1 (Case 2).
    pub fn central_region(&self, coverage: f64) -> Interval {
        assert!(
            (0.0..=1.0).contains(&coverage),
            "coverage must be in [0,1], got {coverage}"
        );
        match self {
            UnivariatePdf::PointMass { x } => Interval::point(*x),
            UnivariatePdf::Exponential { .. } | UnivariatePdf::TruncatedExponential { .. } => {
                Interval::new(self.support().lo, self.quantile(coverage))
            }
            _ => {
                let tail = 0.5 * (1.0 - coverage);
                Interval::new(self.quantile(tail), self.quantile(1.0 - tail))
            }
        }
    }

    /// Restricts (truncates) the pdf to `region`, renormalizing its mass, and
    /// returns the truncated pdf. This is how Case-2 uncertain objects are
    /// built so that condition (1) of Definition 1 holds exactly on the
    /// object's finite domain region.
    ///
    /// Panics if the region has no overlap with the support.
    pub fn truncate(&self, region: Interval) -> UnivariatePdf {
        match self {
            UnivariatePdf::PointMass { x } => {
                assert!(region.contains(*x), "region excludes the point mass");
                self.clone()
            }
            UnivariatePdf::Uniform { lo, hi } => {
                let iv = Interval::new(*lo, *hi)
                    .intersect(&region)
                    .expect("region disjoint from uniform support");
                assert!(iv.width() > 0.0, "degenerate truncated uniform");
                UnivariatePdf::Uniform {
                    lo: iv.lo,
                    hi: iv.hi,
                }
            }
            UnivariatePdf::Normal { mean, sd } => UnivariatePdf::TruncatedNormal {
                mean: *mean,
                sd: *sd,
                lo: region.lo,
                hi: region.hi,
            },
            UnivariatePdf::TruncatedNormal { mean, sd, lo, hi } => {
                let iv = Interval::new(*lo, *hi)
                    .intersect(&region)
                    .expect("region disjoint from truncated normal support");
                UnivariatePdf::TruncatedNormal {
                    mean: *mean,
                    sd: *sd,
                    lo: iv.lo,
                    hi: iv.hi,
                }
            }
            UnivariatePdf::Exponential { origin, rate } => {
                assert!(
                    region.hi > *origin,
                    "region disjoint from exponential support"
                );
                UnivariatePdf::TruncatedExponential {
                    origin: origin.max(region.lo),
                    rate: *rate,
                    hi: region.hi,
                }
            }
            UnivariatePdf::TruncatedExponential { origin, rate, hi } => {
                let iv = Interval::new(*origin, *hi)
                    .intersect(&region)
                    .expect("region disjoint from truncated exponential support");
                UnivariatePdf::TruncatedExponential {
                    origin: iv.lo,
                    rate: *rate,
                    hi: iv.hi,
                }
            }
            UnivariatePdf::Discrete { xs, ws } => {
                let atoms: Vec<(f64, f64)> = xs
                    .iter()
                    .zip(ws)
                    .filter(|&(&x, _)| region.contains(x))
                    .map(|(&x, &w)| (x, w))
                    .collect();
                assert!(!atoms.is_empty(), "region excludes all discrete atoms");
                UnivariatePdf::discrete(atoms)
            }
        }
    }

    /// Draws one realization via inverse-CDF sampling (exact for every
    /// variant, including the truncated ones).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            UnivariatePdf::PointMass { x } => *x,
            _ => self.quantile(rng.gen::<f64>()),
        }
    }

    /// The same pdf rigidly translated by `delta` (mean shifts by exactly
    /// `delta`; all central moments unchanged). Used by the Section-5.1
    /// pipeline to re-center a generated noise model on an observed value.
    pub fn translate(&self, delta: f64) -> UnivariatePdf {
        match self {
            UnivariatePdf::PointMass { x } => UnivariatePdf::PointMass { x: x + delta },
            UnivariatePdf::Uniform { lo, hi } => UnivariatePdf::Uniform {
                lo: lo + delta,
                hi: hi + delta,
            },
            UnivariatePdf::Normal { mean, sd } => UnivariatePdf::Normal {
                mean: mean + delta,
                sd: *sd,
            },
            UnivariatePdf::TruncatedNormal { mean, sd, lo, hi } => UnivariatePdf::TruncatedNormal {
                mean: mean + delta,
                sd: *sd,
                lo: lo + delta,
                hi: hi + delta,
            },
            UnivariatePdf::Exponential { origin, rate } => UnivariatePdf::Exponential {
                origin: origin + delta,
                rate: *rate,
            },
            UnivariatePdf::TruncatedExponential { origin, rate, hi } => {
                UnivariatePdf::TruncatedExponential {
                    origin: origin + delta,
                    rate: *rate,
                    hi: hi + delta,
                }
            }
            UnivariatePdf::Discrete { xs, ws } => UnivariatePdf::Discrete {
                xs: xs.iter().map(|x| x + delta).collect(),
                ws: ws.clone(),
            },
        }
    }
}

/// Mass of a Normal(mean, sd) on `[lo, hi]`.
fn normal_mass(mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    std_normal_cdf((hi - mean) / sd) - std_normal_cdf((lo - mean) / sd)
}

/// Exact `E[Y^2]` for `Y ~ Exp(rate)` truncated to `[0, c]`:
/// `(2/rate^2 - e^{-rate c} (c^2 + 2c/rate + 2/rate^2)) / (1 - e^{-rate c})`.
#[inline]
fn exact_truncated_exp_second_moment(rate: f64, c: f64, e: f64, z: f64) -> f64 {
    (2.0 / (rate * rate) - e * (c * c + 2.0 * c / rate + 2.0 / (rate * rate))) / z
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_moments(pdf: &UnivariatePdf, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = pdf.sample(&mut rng);
            s1 += x;
            s2 += x * x;
        }
        (s1 / n as f64, s2 / n as f64)
    }

    #[test]
    fn uniform_moments() {
        let p = UnivariatePdf::uniform_centered(3.0, 2.0);
        assert!((p.mean() - 3.0).abs() < 1e-12);
        assert!((p.variance() - 16.0 / 12.0).abs() < 1e-12);
        assert!((p.second_moment() - (9.0 + 16.0 / 12.0)).abs() < 1e-12);
    }

    #[test]
    fn normal_moments() {
        let p = UnivariatePdf::normal(-1.0, 0.5);
        assert_eq!(p.mean(), -1.0);
        assert_eq!(p.variance(), 0.25);
        assert!((p.second_moment() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn exponential_mean_placement() {
        // Section 5.1 requires E[f_w] = w for every generated pdf.
        let p = UnivariatePdf::exponential_with_mean(4.0, 2.0);
        assert!((p.mean() - 4.0).abs() < 1e-12);
        assert!((p.variance() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn truncated_normal_symmetric_moments() {
        // Symmetric truncation keeps the mean and shrinks the variance by
        // the classical factor 1 - 2 a phi(a) / (2 Phi(a) - 1).
        let p = UnivariatePdf::normal(2.0, 1.0).truncate(Interval::new(2.0 - 1.96, 2.0 + 1.96));
        assert!((p.mean() - 2.0).abs() < 1e-7, "mean {}", p.mean());
        let a = 1.96;
        let z = 2.0 * std_normal_cdf(a) - 1.0;
        let want = 1.0 - 2.0 * a * std_normal_pdf(a) / z;
        assert!((p.variance() - want).abs() < 1e-6, "var {}", p.variance());
    }

    #[test]
    fn truncated_exponential_moments_match_sampling() {
        let p = UnivariatePdf::exponential_with_mean(1.0, 1.5);
        let region = p.central_region(0.95);
        let t = p.truncate(region);
        let (m, m2) = empirical_moments(&t, 400_000, 7);
        assert!((t.mean() - m).abs() < 5e-3, "mean {} vs {}", t.mean(), m);
        assert!(
            (t.second_moment() - m2).abs() < 1.5e-2,
            "mu2 {} vs {}",
            t.second_moment(),
            m2
        );
    }

    #[test]
    fn truncated_normal_moments_match_sampling() {
        let p = UnivariatePdf::normal(0.0, 2.0).truncate(Interval::new(-1.0, 5.0));
        let (m, m2) = empirical_moments(&p, 400_000, 11);
        assert!((p.mean() - m).abs() < 1e-2);
        assert!((p.second_moment() - m2).abs() < 4e-2);
    }

    #[test]
    fn discrete_moments_and_quantile() {
        let p = UnivariatePdf::discrete(vec![(1.0, 1.0), (3.0, 1.0), (5.0, 2.0)]);
        assert!((p.mean() - (1.0 * 0.25 + 3.0 * 0.25 + 5.0 * 0.5)).abs() < 1e-12);
        assert_eq!(p.quantile(0.1), 1.0);
        assert_eq!(p.quantile(0.3), 3.0);
        assert_eq!(p.quantile(0.9), 5.0);
    }

    #[test]
    fn density_integrates_to_one_uniform_grid() {
        // Trapezoidal check on the continuous variants.
        let pdfs = [
            UnivariatePdf::uniform_centered(0.0, 1.0),
            UnivariatePdf::normal(0.0, 1.0),
            UnivariatePdf::normal(0.0, 1.0).truncate(Interval::new(-1.0, 2.0)),
            UnivariatePdf::exponential_with_mean(0.0, 1.0),
            UnivariatePdf::exponential_with_mean(0.0, 1.0).truncate(Interval::new(-1.0, 3.0)),
        ];
        for p in pdfs {
            let (lo, hi) = (
                p.quantile(1e-9).max(-50.0),
                p.quantile(1.0 - 1e-9).min(50.0),
            );
            let n = 200_000;
            let dx = (hi - lo) / n as f64;
            let mass: f64 = (0..=n)
                .map(|i| {
                    let x = lo + i as f64 * dx;
                    let w = if i == 0 || i == n { 0.5 } else { 1.0 };
                    w * p.density(x)
                })
                .sum::<f64>()
                * dx;
            assert!(
                (mass - 1.0).abs() < 1e-3,
                "{:?} integrates to {mass}",
                p.family()
            );
        }
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let pdfs = [
            UnivariatePdf::uniform_centered(1.0, 0.5),
            UnivariatePdf::normal(-2.0, 0.7),
            UnivariatePdf::normal(0.0, 1.0).truncate(Interval::new(-0.5, 1.5)),
            UnivariatePdf::exponential_with_mean(2.0, 3.0),
            UnivariatePdf::exponential_with_mean(2.0, 3.0).truncate(Interval::new(1.0, 4.0)),
        ];
        for p in pdfs {
            for q in [0.05, 0.25, 0.5, 0.75, 0.95] {
                let x = p.quantile(q);
                assert!(
                    (p.cdf(x) - q).abs() < 1e-5,
                    "{:?}: cdf(quantile({q})) = {}",
                    p.family(),
                    p.cdf(x)
                );
            }
        }
    }

    #[test]
    fn central_region_has_requested_coverage() {
        let pdfs = [
            UnivariatePdf::uniform_centered(0.0, 2.0),
            UnivariatePdf::normal(1.0, 2.0),
            UnivariatePdf::exponential_with_mean(0.0, 0.5),
        ];
        for p in pdfs {
            let r = p.central_region(0.95);
            let mass = p.cdf(r.hi) - p.cdf(r.lo);
            assert!(
                (mass - 0.95).abs() < 1e-6,
                "{:?} region mass {mass}",
                p.family()
            );
        }
    }

    #[test]
    fn translate_shifts_mean_and_preserves_variance() {
        let pdfs = [
            UnivariatePdf::PointMass { x: 1.0 },
            UnivariatePdf::uniform_centered(2.0, 1.0),
            UnivariatePdf::normal(-1.0, 0.7),
            UnivariatePdf::normal(0.0, 1.0).truncate(Interval::new(-1.0, 2.0)),
            UnivariatePdf::exponential_with_mean(3.0, 2.0),
            UnivariatePdf::exponential_with_mean(3.0, 2.0).truncate(Interval::new(2.0, 5.0)),
            UnivariatePdf::discrete(vec![(0.0, 1.0), (2.0, 3.0)]),
        ];
        for p in pdfs {
            let t = p.translate(1.5);
            assert!(
                (t.mean() - (p.mean() + 1.5)).abs() < 1e-9,
                "{:?}: mean {} vs {}",
                p.family(),
                t.mean(),
                p.mean() + 1.5
            );
            assert!(
                (t.variance() - p.variance()).abs() < 1e-9,
                "{:?}: variance changed under translation",
                p.family()
            );
        }
    }

    #[test]
    fn point_mass_degenerate_behaviour() {
        let p = UnivariatePdf::PointMass { x: 2.5 };
        assert_eq!(p.mean(), 2.5);
        assert_eq!(p.variance(), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.sample(&mut rng), 2.5);
        assert_eq!(p.central_region(0.95), Interval::point(2.5));
    }

    #[test]
    fn samples_stay_in_truncated_support() {
        let p = UnivariatePdf::normal(0.0, 1.0).truncate(Interval::new(-0.3, 0.9));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = p.sample(&mut rng);
            assert!((-0.3..=0.9).contains(&x), "sample {x} escaped support");
        }
    }

    #[test]
    fn truncate_uniform_clips_interval() {
        let p = UnivariatePdf::uniform_centered(0.0, 2.0).truncate(Interval::new(-1.0, 5.0));
        assert_eq!(p.support(), Interval::new(-1.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn truncate_disjoint_region_panics() {
        let _ = UnivariatePdf::uniform_centered(0.0, 1.0).truncate(Interval::new(5.0, 6.0));
    }
}
