//! Scalar special functions needed by the uncertainty model.
//!
//! The Rust standard library provides neither `erf` nor the Normal quantile
//! function, and no external statistics crate is part of the approved
//! dependency set, so the few special functions the paper's model needs are
//! implemented here from well-known high-accuracy approximations.

/// `1/sqrt(2*pi)`, the normalization constant of the standard Normal pdf.
pub const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// `sqrt(2)`.
pub const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// Error function `erf(x) = 2/sqrt(pi) * Integral_0^x e^{-t^2} dt`.
///
/// Uses the Abramowitz & Stegun 7.1.26-style rational approximation refined by
/// W. J. Cody; absolute error is below `1.5e-7`, which is far below the Monte
/// Carlo noise floor of every consumer in this workspace. For the moment
/// computations (truncated Normal pdfs) the approximation error propagates
/// linearly and is negligible relative to the paper's reported precision
/// (three decimal digits).
pub fn erf(x: f64) -> f64 {
    // erf is odd; work on |x| and restore the sign at the end.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();

    // Coefficients of the Cody/A&S rational approximation.
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;

    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard Normal probability density `phi(x)`.
pub fn std_normal_pdf(x: f64) -> f64 {
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard Normal cumulative distribution `Phi(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Standard Normal quantile function `Phi^{-1}(p)` for `p` in `(0, 1)`.
///
/// Peter Acklam's rational approximation (relative error below `1.15e-9`)
/// followed by one Halley refinement step, which pushes the result to close
/// to machine precision. Out-of-domain inputs saturate to `-inf` / `+inf`.
pub fn std_normal_quantile(p: f64) -> f64 {
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        // Lower tail.
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        // Central region.
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Upper tail (mirror of the lower tail).
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the accurate cdf.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Relative-tolerance float comparison used throughout the workspace's tests
/// and debug assertions.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_matches_reference_values() {
        // Reference values from Abramowitz & Stegun tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_877_8),
            (1.0, 0.842_700_792_9),
            (2.0, 0.995_322_265_0),
            (3.0, 0.999_977_909_5),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 2e-7,
                "erf({x}) = {} want {want}",
                erf(x)
            );
            assert!((erf(-x) + want).abs() < 2e-7, "erf is odd");
        }
    }

    #[test]
    fn erfc_is_complement() {
        for x in [-2.5, -1.0, 0.0, 0.3, 1.7, 4.0] {
            assert!(approx_eq(erf(x) + erfc(x), 1.0, 1e-12));
        }
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((std_normal_cdf(1.0) - 0.841_344_746).abs() < 2e-7);
        assert!((std_normal_cdf(-1.959_963_985) - 0.025).abs() < 2e-7);
        assert!((std_normal_cdf(3.0) - 0.998_650_102).abs() < 2e-7);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for p in [0.001, 0.025, 0.1, 0.3, 0.5, 0.7, 0.9, 0.975, 0.999] {
            let x = std_normal_quantile(p);
            assert!(
                (std_normal_cdf(x) - p).abs() < 1e-6,
                "round trip failed at p={p}: x={x} cdf={}",
                std_normal_cdf(x)
            );
        }
    }

    #[test]
    fn normal_quantile_saturates_out_of_domain() {
        assert_eq!(std_normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(std_normal_quantile(1.0), f64::INFINITY);
        assert_eq!(std_normal_quantile(-0.5), f64::NEG_INFINITY);
    }

    #[test]
    fn normal_quantile_is_symmetric() {
        for p in [0.01, 0.2, 0.4] {
            let lo = std_normal_quantile(p);
            let hi = std_normal_quantile(1.0 - p);
            assert!(approx_eq(lo, -hi, 1e-8), "quantile not symmetric at p={p}");
        }
    }

    #[test]
    fn std_normal_pdf_peak_and_symmetry() {
        assert!(approx_eq(std_normal_pdf(0.0), INV_SQRT_2PI, 1e-12));
        assert!(approx_eq(std_normal_pdf(1.3), std_normal_pdf(-1.3), 1e-12));
    }
}
