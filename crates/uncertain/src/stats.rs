//! Descriptive statistics over sample sets, used to validate the sampling
//! substrate (Monte Carlo and MCMC) against the model's exact moments, and
//! by the dataset generators to calibrate uncertainty spreads.

/// Mean of a scalar sample.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of an empty sample is undefined");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of a scalar sample.
pub fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population covariance of two paired scalar samples.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance requires paired samples");
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(&x, &y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.len() as f64
}

/// Pearson correlation of two paired scalar samples (0 when either sample is
/// constant).
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let denom = (variance(xs) * variance(ys)).sqrt();
    if denom <= 0.0 {
        return 0.0;
    }
    covariance(xs, ys) / denom
}

/// The `q`-quantile (nearest-rank) of a sample; `q` in `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of an empty sample is undefined");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Two-sample Kolmogorov–Smirnov statistic `sup_x |F_a(x) - F_b(x)|`.
///
/// Used by the test-suite to verify that the Metropolis MCMC sampler and the
/// exact inverse-CDF sampler target the same distribution.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs non-empty samples");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (mut i, mut j) = (0usize, 0usize);
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let mut d = 0.0f64;
    while i < sa.len() && j < sb.len() {
        // Advance both sides past the current value so that ties (identical
        // observations in both samples) do not register a spurious gap.
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// Fixed-width histogram of a sample over `[lo, hi]` with `bins` buckets;
/// out-of-range values clamp into the edge buckets.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "need at least one bin");
    assert!(hi > lo, "histogram range must be non-degenerate");
    let mut counts = vec![0usize; bins];
    let w = (hi - lo) / bins as f64;
    for &x in xs {
        let b = (((x - lo) / w).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[b] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn covariance_and_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [6.0, 4.0, 2.0];
        assert!((correlation(&xs, &zs) + 1.0).abs() < 1e-12);
        let constant = [5.0, 5.0, 5.0];
        assert_eq!(correlation(&xs, &constant), 0.0);
    }

    #[test]
    fn quantile_nearest_rank() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
    }

    #[test]
    fn ks_identical_samples_is_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!(ks_statistic(&xs, &xs) < 1e-12);
    }

    #[test]
    fn ks_disjoint_samples_is_one() {
        let a = [0.0, 1.0];
        let b = [10.0, 11.0];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_everything() {
        let xs = [-1.0, 0.1, 0.5, 0.9, 2.0];
        let h = histogram(&xs, 0.0, 1.0, 2);
        assert_eq!(h.iter().sum::<usize>(), xs.len());
        assert_eq!(h, vec![2, 3]); // clamp: -1 -> first, 2.0 -> last
    }
}
