//! Correlated multivariate Gaussian uncertainty.
//!
//! Definition 1 allows arbitrary multivariate pdfs; the per-dimension
//! independent model of [`crate::object::UncertainObject`] covers everything
//! the paper's closed forms need (they only consume per-dimension moments),
//! but real measurement noise is often *correlated* across attributes. This
//! module provides a full-covariance Gaussian object:
//!
//! * exact joint density and Cholesky-based sampling (correlation preserved);
//! * marginal moments compatible with the whole moment-based algorithm suite
//!   (the Theorem-3 objective is provably unchanged by correlations, because
//!   `J` depends only on per-dimension `mu`, `mu2`, `sigma^2` — a fact the
//!   tests verify by comparing against the independent projection);
//! * projection to an independent [`UncertainObject`] for the closed-form
//!   algorithms, while the sample-based ones (basic UK-means, FDBSCAN,
//!   FOPTICS) can consume correlated samples directly.

use crate::moments::Moments;
use crate::object::UncertainObject;
use crate::pdf::UnivariatePdf;
use rand::Rng;

/// A multivariate Gaussian with full covariance.
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use ucpc_uncertain::correlated::CorrelatedGaussian;
///
/// // Strongly correlated 2-d measurement noise.
/// let g = CorrelatedGaussian::new(vec![1.0, 2.0], vec![1.0, 0.8, 0.8, 1.0]).unwrap();
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = g.sample(&mut rng);
/// assert_eq!(x.len(), 2);
/// // The closed-form algorithms consume only the marginals:
/// let obj = g.to_independent_object(0.95);
/// assert_eq!(obj.dims(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CorrelatedGaussian {
    mean: Vec<f64>,
    cov: Vec<f64>,     // row-major m x m
    chol: Vec<f64>,    // lower-triangular Cholesky factor, row-major
    inv_det_sqrt: f64, // 1 / sqrt((2 pi)^m det(cov))
}

impl CorrelatedGaussian {
    /// Builds the distribution from a mean vector and a row-major covariance
    /// matrix. Returns `None` if the covariance is not symmetric positive
    /// definite (within a small tolerance).
    pub fn new(mean: Vec<f64>, cov: Vec<f64>) -> Option<Self> {
        let m = mean.len();
        if cov.len() != m * m {
            return None;
        }
        // Symmetry check.
        for i in 0..m {
            for j in (i + 1)..m {
                if (cov[i * m + j] - cov[j * m + i]).abs() > 1e-9 * (1.0 + cov[i * m + j].abs()) {
                    return None;
                }
            }
        }
        let chol = cholesky(&cov, m)?;
        // det(cov) = prod(diag(L))^2.
        let mut log_det = 0.0;
        for i in 0..m {
            log_det += chol[i * m + i].ln() * 2.0;
        }
        let log_norm = -0.5 * (m as f64 * (2.0 * std::f64::consts::PI).ln() + log_det);
        Some(Self {
            mean,
            cov,
            chol,
            inv_det_sqrt: log_norm.exp(),
        })
    }

    /// Convenience: independent (diagonal) Gaussian.
    pub fn diagonal(mean: Vec<f64>, variances: &[f64]) -> Option<Self> {
        let m = mean.len();
        if variances.len() != m {
            return None;
        }
        let mut cov = vec![0.0; m * m];
        for (i, &v) in variances.iter().enumerate() {
            cov[i * m + i] = v;
        }
        Self::new(mean, cov)
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.mean.len()
    }

    /// Mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Covariance entry `(i, j)`.
    pub fn cov(&self, i: usize, j: usize) -> f64 {
        self.cov[i * self.dims() + j]
    }

    /// Joint density at `x`.
    #[allow(clippy::needless_range_loop)] // triangular solve reads clearer indexed
    pub fn density(&self, x: &[f64]) -> f64 {
        let m = self.dims();
        assert_eq!(x.len(), m, "dimension mismatch");
        // Solve L y = (x - mean); quadratic form = ||y||^2.
        let mut y = vec![0.0; m];
        for i in 0..m {
            let mut acc = x[i] - self.mean[i];
            for j in 0..i {
                acc -= self.chol[i * m + j] * y[j];
            }
            y[i] = acc / self.chol[i * m + i];
        }
        let q: f64 = y.iter().map(|v| v * v).sum();
        self.inv_det_sqrt * (-0.5 * q).exp()
    }

    /// Draws one correlated realization (`x = mean + L z`, `z ~ N(0, I)`).
    #[allow(clippy::needless_range_loop)] // triangular product reads clearer indexed
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let m = self.dims();
        let z: Vec<f64> = (0..m).map(|_| gaussian(rng)).collect();
        let mut x = self.mean.clone();
        for i in 0..m {
            for j in 0..=i {
                x[i] += self.chol[i * m + j] * z[j];
            }
        }
        x
    }

    /// Draws `n` correlated realizations.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Marginal moments (what every closed-form algorithm consumes; exact,
    /// independent of the correlation structure).
    pub fn marginal_moments(&self) -> Moments {
        let m = self.dims();
        let mu = self.mean.clone();
        let mu2: Vec<f64> = (0..m)
            .map(|j| self.mean[j] * self.mean[j] + self.cov(j, j))
            .collect();
        Moments::from_mu_mu2(mu, mu2)
    }

    /// Projects onto the independent per-dimension model: an
    /// [`UncertainObject`] with the same marginals (Normal per dimension,
    /// truncated to the `coverage` region). Correlations are dropped — which
    /// is *lossless for the Theorem-3 objective* (it only reads marginal
    /// moments) but lossy for joint-density consumers.
    pub fn to_independent_object(&self, coverage: f64) -> UncertainObject {
        let dims: Vec<UnivariatePdf> = (0..self.dims())
            .map(|j| UnivariatePdf::normal(self.mean[j], self.cov(j, j).sqrt().max(1e-12)))
            .collect();
        UncertainObject::with_coverage(dims, coverage)
    }
}

/// Lower-triangular Cholesky factor of a row-major SPD matrix, or `None` if
/// the matrix is not positive definite.
fn cholesky(a: &[f64], m: usize) -> Option<Vec<f64>> {
    let mut l = vec![0.0; m * m];
    for i in 0..m {
        for j in 0..=i {
            let mut sum = a[i * m + j];
            for k in 0..j {
                sum -= l[i * m + k] * l[j * m + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * m + i] = sum.sqrt();
            } else {
                l[i * m + j] = sum / l[j * m + j];
            }
        }
    }
    Some(l)
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{correlation, mean, variance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn correlated_2d() -> CorrelatedGaussian {
        CorrelatedGaussian::new(vec![1.0, -2.0], vec![2.0, 1.2, 1.2, 1.0]).unwrap()
    }

    #[test]
    fn rejects_invalid_covariances() {
        // Asymmetric.
        assert!(CorrelatedGaussian::new(vec![0.0, 0.0], vec![1.0, 0.5, 0.1, 1.0]).is_none());
        // Not positive definite.
        assert!(CorrelatedGaussian::new(vec![0.0, 0.0], vec![1.0, 2.0, 2.0, 1.0]).is_none());
        // Wrong size.
        assert!(CorrelatedGaussian::new(vec![0.0, 0.0], vec![1.0]).is_none());
    }

    #[test]
    fn samples_reproduce_mean_variance_and_correlation() {
        let g = correlated_2d();
        let mut rng = StdRng::seed_from_u64(13);
        let s = g.sample_n(&mut rng, 200_000);
        let xs: Vec<f64> = s.iter().map(|p| p[0]).collect();
        let ys: Vec<f64> = s.iter().map(|p| p[1]).collect();
        assert!((mean(&xs) - 1.0).abs() < 0.02);
        assert!((mean(&ys) + 2.0).abs() < 0.02);
        assert!((variance(&xs) - 2.0).abs() < 0.05);
        assert!((variance(&ys) - 1.0).abs() < 0.03);
        let want_corr = 1.2 / (2.0f64.sqrt() * 1.0);
        assert!(
            (correlation(&xs, &ys) - want_corr).abs() < 0.02,
            "correlation {} want {want_corr}",
            correlation(&xs, &ys)
        );
    }

    #[test]
    fn density_integrates_to_one_on_a_grid() {
        let g = correlated_2d();
        // Trapezoid over [-8, 10] x [-8, 6].
        let n = 300;
        let (x0, x1, y0, y1) = (-8.0, 10.0, -8.0, 6.0);
        let (dx, dy) = ((x1 - x0) / n as f64, (y1 - y0) / n as f64);
        let mut mass = 0.0;
        for i in 0..=n {
            for j in 0..=n {
                let w = if i == 0 || i == n { 0.5 } else { 1.0 }
                    * if j == 0 || j == n { 0.5 } else { 1.0 };
                mass += w * g.density(&[x0 + i as f64 * dx, y0 + j as f64 * dy]);
            }
        }
        mass *= dx * dy;
        assert!((mass - 1.0).abs() < 1e-3, "joint density mass {mass}");
    }

    #[test]
    fn marginal_moments_ignore_correlation() {
        let g = correlated_2d();
        let ind = CorrelatedGaussian::diagonal(vec![1.0, -2.0], &[2.0, 1.0]).unwrap();
        let ma = g.marginal_moments();
        let mb = ind.marginal_moments();
        assert_eq!(ma.mu(), mb.mu());
        assert_eq!(ma.mu2(), mb.mu2());
    }

    #[test]
    fn theorem3_objective_is_correlation_invariant() {
        // Two objects identical in marginals, different in correlation: the
        // independent projection (all any closed-form algorithm sees) must
        // coincide with a directly-built independent object.
        let corr = correlated_2d();
        let obj_from_corr = corr.to_independent_object(0.9999);
        let obj_direct = UncertainObject::new(vec![
            UnivariatePdf::normal(1.0, 2.0f64.sqrt()),
            UnivariatePdf::normal(-2.0, 1.0),
        ]);
        // With ~full coverage the truncated moments approach the parents'
        // (truncation at +-3.9 sigma still shaves ~0.2% off the variance).
        for j in 0..2 {
            assert!((obj_from_corr.mu()[j] - obj_direct.mu()[j]).abs() < 1e-6);
            let rel = (obj_from_corr.variance()[j] - obj_direct.variance()[j]).abs()
                / obj_direct.variance()[j];
            assert!(rel < 5e-3, "dim {j}: relative variance gap {rel}");
        }
    }

    #[test]
    fn diagonal_matches_independent_sampling_distribution() {
        let g = CorrelatedGaussian::diagonal(vec![0.0], &[4.0]).unwrap();
        let pdf = UnivariatePdf::normal(0.0, 2.0);
        let mut rng = StdRng::seed_from_u64(14);
        let a: Vec<f64> = g.sample_n(&mut rng, 50_000).iter().map(|p| p[0]).collect();
        let b: Vec<f64> = (0..50_000).map(|_| pdf.sample(&mut rng)).collect();
        let ks = crate::stats::ks_statistic(&a, &b);
        assert!(ks < 0.015, "KS statistic {ks} too large");
    }
}
