//! Multivariate uncertain objects (Definition 1).
//!
//! An [`UncertainObject`] is the pair `(R, f)` of the paper: an `m`-dimensional
//! box-shaped domain region and a pdf positive exactly on that region. The pdf
//! factorizes per dimension (the standard multivariate model of the uncertain
//! clustering literature, and all the paper's closed forms only consume
//! per-dimension moments). Moments are computed once at construction.

use crate::moments::Moments;
use crate::pdf::{PdfFamily, UnivariatePdf};
use crate::region::{BoxRegion, Interval};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A multivariate uncertain object `o = (R, f)` with precomputed moments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncertainObject {
    region: BoxRegion,
    dims: Box<[UnivariatePdf]>,
    moments: Moments,
}

impl UncertainObject {
    /// Builds an object from one pdf per dimension. Each pdf is truncated to
    /// its own support if that support is finite; pdfs with unbounded support
    /// are kept as-is and the region records their `central_region(coverage)`
    /// only when constructed through [`UncertainObject::with_coverage`].
    ///
    /// For objects whose region must satisfy Definition 1 exactly (zero
    /// density outside `R`), prefer [`UncertainObject::with_coverage`], which
    /// truncates and renormalizes.
    pub fn new(dims: Vec<UnivariatePdf>) -> Self {
        assert!(
            !dims.is_empty(),
            "uncertain object needs at least one dimension"
        );
        let region = BoxRegion::new(dims.iter().map(|p| p.support()).collect::<Vec<_>>());
        let moments = moments_of(&dims);
        Self {
            region,
            dims: dims.into(),
            moments,
        }
    }

    /// Builds an object whose domain region is the per-dimension central
    /// region containing `coverage` (e.g. `0.95`) of each pdf's mass; every
    /// pdf is truncated and renormalized on that region so that condition (1)
    /// of Definition 1 holds exactly (Section 5.1, Case 2).
    pub fn with_coverage(dims: Vec<UnivariatePdf>, coverage: f64) -> Self {
        assert!(
            !dims.is_empty(),
            "uncertain object needs at least one dimension"
        );
        let truncated: Vec<UnivariatePdf> = dims
            .into_iter()
            .map(|p| {
                let r = p.central_region(coverage);
                if r.width() > 0.0 {
                    p.truncate(r)
                } else {
                    p // point mass: nothing to truncate
                }
            })
            .collect();
        Self::new(truncated)
    }

    /// A deterministic point viewed as a degenerate uncertain object
    /// (Case 1 of the evaluation; `sigma^2 = 0`).
    pub fn deterministic(x: &[f64]) -> Self {
        Self::new(
            x.iter()
                .map(|&v| UnivariatePdf::PointMass { x: v })
                .collect(),
        )
    }

    /// Number of dimensions `m`.
    pub fn dims(&self) -> usize {
        self.dims.len()
    }

    /// The domain region `R`.
    pub fn region(&self) -> &BoxRegion {
        &self.region
    }

    /// The per-dimension pdfs.
    pub fn pdfs(&self) -> &[UnivariatePdf] {
        &self.dims
    }

    /// The pdf of dimension `j`.
    pub fn pdf(&self, j: usize) -> &UnivariatePdf {
        &self.dims[j]
    }

    /// Precomputed moments (Line 1 of Algorithm 1).
    pub fn moments(&self) -> &Moments {
        &self.moments
    }

    /// Expected-value vector `mu(o)`.
    pub fn mu(&self) -> &[f64] {
        self.moments.mu()
    }

    /// Second-order moment vector `mu_2(o)`.
    pub fn mu2(&self) -> &[f64] {
        self.moments.mu2()
    }

    /// Variance vector `sigma^2(o)`.
    pub fn variance(&self) -> &[f64] {
        self.moments.variance()
    }

    /// Global scalar variance `sigma^2(o)` of Eq. (6).
    pub fn total_variance(&self) -> f64 {
        self.moments.total_variance()
    }

    /// Whether the object is deterministic (every dimension a point mass).
    pub fn is_deterministic(&self) -> bool {
        self.dims
            .iter()
            .all(|p| matches!(p, UnivariatePdf::PointMass { .. }))
    }

    /// Joint density `f(x)` (product across dimensions).
    pub fn density(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dims(), "dimension mismatch");
        self.dims
            .iter()
            .zip(x)
            .map(|(p, &v)| p.density(v))
            .product()
    }

    /// Draws one deterministic realization of the object.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.dims.iter().map(|p| p.sample(rng)).collect()
    }

    /// Draws `n` realizations as rows.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The pdf families present in this object, deduplicated in dimension
    /// order (useful for reporting).
    pub fn families(&self) -> Vec<PdfFamily> {
        let mut out = Vec::new();
        for p in self.dims.iter() {
            let f = p.family();
            if !out.contains(&f) {
                out.push(f);
            }
        }
        out
    }

    /// The per-dimension support intervals (identical to `region().sides()`).
    pub fn supports(&self) -> Vec<Interval> {
        self.dims.iter().map(|p| p.support()).collect()
    }
}

fn moments_of(dims: &[UnivariatePdf]) -> Moments {
    let mu: Vec<f64> = dims.iter().map(UnivariatePdf::mean).collect();
    let mu2: Vec<f64> = dims.iter().map(UnivariatePdf::second_moment).collect();
    Moments::from_mu_mu2(mu, mu2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_dim_object() -> UncertainObject {
        UncertainObject::new(vec![
            UnivariatePdf::uniform_centered(1.0, 0.5),
            UnivariatePdf::normal(-1.0, 0.2),
        ])
    }

    #[test]
    fn moments_are_precomputed() {
        let o = two_dim_object();
        assert_eq!(o.mu(), &[1.0, -1.0]);
        assert!((o.variance()[0] - 0.25 / 3.0).abs() < 1e-12);
        assert!((o.variance()[1] - 0.04).abs() < 1e-12);
        assert!(
            (o.total_variance() - (0.25 / 3.0 + 0.04)).abs() < 1e-12,
            "Eq. (6): global variance is the 1-norm of the variance vector"
        );
    }

    #[test]
    fn deterministic_object_is_degenerate() {
        let o = UncertainObject::deterministic(&[3.0, 4.0]);
        assert!(o.is_deterministic());
        assert_eq!(o.total_variance(), 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(o.sample(&mut rng), vec![3.0, 4.0]);
    }

    #[test]
    fn with_coverage_truncates_and_keeps_definition_1() {
        let o = UncertainObject::with_coverage(
            vec![
                UnivariatePdf::normal(0.0, 1.0),
                UnivariatePdf::exponential_with_mean(2.0, 1.0),
            ],
            0.95,
        );
        // Region is finite.
        for side in o.region().sides() {
            assert!(side.lo.is_finite() && side.hi.is_finite());
        }
        // Density is zero outside the region (condition (1) of Definition 1).
        let outside = [o.region().side(0).hi + 1.0, o.region().side(1).center()];
        assert_eq!(o.density(&outside), 0.0);
        // Density is positive at the region center.
        let center = o.region().center();
        assert!(o.density(&center) > 0.0);
    }

    #[test]
    fn samples_fall_in_region() {
        let o = UncertainObject::with_coverage(
            vec![
                UnivariatePdf::normal(5.0, 2.0),
                UnivariatePdf::uniform_centered(0.0, 1.0),
            ],
            0.9,
        );
        let mut rng = StdRng::seed_from_u64(42);
        for s in o.sample_n(&mut rng, 5_000) {
            assert!(o.region().contains(&s), "sample {s:?} escaped the region");
        }
    }

    #[test]
    fn empirical_moments_converge_to_exact() {
        let o = two_dim_object();
        let mut rng = StdRng::seed_from_u64(9);
        let samples = o.sample_n(&mut rng, 300_000);
        let emp = Moments::from_samples(&samples);
        for j in 0..2 {
            assert!((emp.mu()[j] - o.mu()[j]).abs() < 5e-3);
            assert!((emp.mu2()[j] - o.mu2()[j]).abs() < 1e-2);
        }
    }

    #[test]
    fn families_are_reported() {
        let o = two_dim_object();
        assert_eq!(o.families(), vec![PdfFamily::Uniform, PdfFamily::Normal]);
    }
}
