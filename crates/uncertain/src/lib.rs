//! # ucpc-uncertain — the uncertain-object substrate
//!
//! Implements the uncertainty model of *Uncertain Centroid based Partitional
//! Clustering of Uncertain Data* (Gullo & Tagarelli, VLDB 2012), Section 2.1:
//! multivariate uncertain objects `o = (R, f)` with box-shaped domain regions
//! and per-dimension pdfs, their exact first/second moments (Eqs. 2–6), the
//! expected-distance calculus the paper builds on (Eq. 8, Eq. 13, Lemma 3),
//! and the Monte Carlo / MCMC sampling machinery used by the sample-based
//! baselines and by the uncertainty-generation pipeline of Section 5.1.
//!
//! ## Architecture: from pdfs to the hot loop
//!
//! The crate is layered so that clustering loops never touch a pdf:
//!
//! 1. [`pdf::UnivariatePdf`] / [`object::UncertainObject`] describe the
//!    uncertainty model and integrate it into exact per-dimension moments;
//! 2. [`moments::Moments`] caches those moments per object (Line 1 of
//!    Algorithm 1) together with the scalar aggregates the delta-`J` kernel
//!    consumes;
//! 3. [`arena::MomentArena`] lays the moments of a whole dataset out as
//!    flat row-major matrices plus per-object scalar columns, deriving the
//!    dot-product form of the Corollary-1 update (see the [`arena`] module
//!    docs), so every candidate relocation in `ucpc-core` costs one fused
//!    O(m) dot product; [`slab::SlabArena`] adds free-list row reuse on top
//!    for streaming insert/remove workloads, keeping the same contiguity
//!    with zero steady-state allocation;
//! 4. [`simd`] dispatches that dot product at run time to an explicit
//!    AVX2+FMA or NEON kernel (env knob `UCPC_SIMD`), with every backend
//!    bit-identical to the scalar fallback by construction.
//!
//! ## Quick tour
//!
//! ```
//! use ucpc_uncertain::{UncertainObject, UnivariatePdf};
//! use ucpc_uncertain::distance::expected_sq_distance;
//!
//! // A 2-d sensor reading at (1.0, -2.0) with Normal measurement noise,
//! // restricted to the region holding 95% of its probability mass.
//! let o1 = UncertainObject::with_coverage(
//!     vec![UnivariatePdf::normal(1.0, 0.2), UnivariatePdf::normal(-2.0, 0.4)],
//!     0.95,
//! );
//! let o2 = UncertainObject::deterministic(&[0.5, -1.5]);
//!
//! // Closed-form expected squared distance (Lemma 3) — no integration.
//! let d = expected_sq_distance(&o1, &o2);
//! assert!(d > 0.0);
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod correlated;
pub mod distance;
pub mod env;
pub mod math;
pub mod moments;
pub mod object;
pub mod pdf;
pub mod region;
pub mod sampling;
pub mod simd;
pub mod slab;
pub mod stats;

pub use arena::{MomentArena, MomentView};
pub use moments::Moments;
pub use object::UncertainObject;
pub use pdf::{PdfFamily, UnivariatePdf};
pub use region::{BoxRegion, Interval};
pub use slab::{ObjectHandle, SlabArena, StaleHandle};
