//! Distances between points, uncertain objects, and mixtures thereof.
//!
//! Three distance notions from the paper:
//!
//! * `ED(o, y)` — expected *squared Euclidean* distance between an uncertain
//!   object and a point. Eq. (8) gives the closed form
//!   `ED(o, y) = ED(o, mu(o)) + ||y - mu(o)||^2 = sigma^2(o) + ||y - mu(o)||^2`,
//!   which is what makes UK-means (the fast variant of \[14\]) and UCPC's
//!   objective computable without integration.
//! * `ED_d(o, y)` — expected distance under an arbitrary metric `d`, which has
//!   no closed form and is approximated from `S` samples; this is the basic
//!   UK-means bottleneck the paper describes (complexity `O(I S k n m)`).
//! * `ÊD(o, o')` — expected squared distance between two uncertain objects
//!   (Eq. 13), with Lemma 3's closed form
//!   `ÊD(o,o') = Σ_j ((mu2)_j(o) - 2 mu_j(o) mu_j(o') + (mu2)_j(o'))
//!             = ||mu(o) - mu(o')||^2 + sigma^2(o) + sigma^2(o')`.

use crate::object::UncertainObject;

/// Metrics for the sample-approximated expected distance `ED_d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Euclidean distance `||x - y||`.
    Euclidean,
    /// Squared Euclidean distance `||x - y||^2` (the paper's default).
    SquaredEuclidean,
}

impl Metric {
    /// Evaluates the metric on a pair of points.
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        let sq = sq_euclidean(x, y);
        match self {
            Metric::Euclidean => sq.sqrt(),
            Metric::SquaredEuclidean => sq,
        }
    }
}

/// Squared Euclidean distance between two points.
pub fn sq_euclidean(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dimension mismatch");
    x.iter().zip(y).map(|(&a, &b)| (a - b) * (a - b)).sum()
}

/// Euclidean distance between two points.
pub fn euclidean(x: &[f64], y: &[f64]) -> f64 {
    sq_euclidean(x, y).sqrt()
}

/// Closed-form expected squared Euclidean distance `ED(o, y)` between an
/// uncertain object and a deterministic point (Eq. 8):
/// `sigma^2(o) + ||mu(o) - y||^2`.
pub fn expected_sq_distance_to_point(o: &UncertainObject, y: &[f64]) -> f64 {
    o.total_variance() + sq_euclidean(o.mu(), y)
}

/// The constant first term of Eq. (8), `ED(o, mu(o)) = sigma^2(o)`: the
/// expected squared distance between an object and its own expected value.
/// UK-means precomputes this per object in its offline phase.
pub fn self_expected_sq_distance(o: &UncertainObject) -> f64 {
    o.total_variance()
}

/// Sample-approximated expected distance `ED_d(o, y)` for an arbitrary
/// metric, the basic UK-means inner loop. `samples` are precomputed
/// realizations of `o` (see [`crate::sampling::SampleCache`]).
pub fn expected_distance_sampled(samples: &[Vec<f64>], y: &[f64], metric: Metric) -> f64 {
    assert!(!samples.is_empty(), "need at least one sample");
    samples.iter().map(|s| metric.eval(s, y)).sum::<f64>() / samples.len() as f64
}

/// Closed-form expected squared distance between two uncertain objects
/// (Lemma 3): `||mu(o) - mu(o')||^2 + sigma^2(o) + sigma^2(o')`.
pub fn expected_sq_distance(a: &UncertainObject, b: &UncertainObject) -> f64 {
    sq_euclidean(a.mu(), b.mu()) + a.total_variance() + b.total_variance()
}

/// Lemma-3 closed form evaluated directly from moment vectors, for callers
/// that carry moments without whole objects (e.g. mixture centroids):
/// `Σ_j ((mu2)_j(a) - 2 mu_j(a) mu_j(b) + (mu2)_j(b))`.
pub fn expected_sq_distance_from_moments(
    mu_a: &[f64],
    mu2_a: &[f64],
    mu_b: &[f64],
    mu2_b: &[f64],
) -> f64 {
    debug_assert_eq!(mu_a.len(), mu_b.len(), "dimension mismatch");
    let mut acc = 0.0;
    for j in 0..mu_a.len() {
        acc += mu2_a[j] - 2.0 * mu_a[j] * mu_b[j] + mu2_b[j];
    }
    acc
}

/// Sample-approximated pairwise expected distance between two objects under
/// an arbitrary metric: the mean of `d` over the paired sample sets
/// (samples are matched index-wise when lengths agree, otherwise the full
/// cross product is used).
pub fn expected_distance_between_sampled(
    samples_a: &[Vec<f64>],
    samples_b: &[Vec<f64>],
    metric: Metric,
) -> f64 {
    assert!(
        !samples_a.is_empty() && !samples_b.is_empty(),
        "need samples"
    );
    if samples_a.len() == samples_b.len() {
        // Index-matched estimator: unbiased because realizations are
        // independent across objects, and O(S) instead of O(S^2).
        let n = samples_a.len();
        (0..n)
            .map(|i| metric.eval(&samples_a[i], &samples_b[i]))
            .sum::<f64>()
            / n as f64
    } else {
        let mut acc = 0.0;
        for sa in samples_a {
            for sb in samples_b {
                acc += metric.eval(sa, sb);
            }
        }
        acc / (samples_a.len() * samples_b.len()) as f64
    }
}

/// Probability that two uncertain objects lie within `eps` of each other
/// (Euclidean), estimated from paired samples. This is the fuzzy distance
/// function of FDBSCAN/FOPTICS (Kriegel & Pfeifle).
pub fn distance_probability(samples_a: &[Vec<f64>], samples_b: &[Vec<f64>], eps: f64) -> f64 {
    assert!(
        !samples_a.is_empty() && !samples_b.is_empty(),
        "need samples"
    );
    let eps_sq = eps * eps;
    let mut hits = 0usize;
    let mut total = 0usize;
    if samples_a.len() == samples_b.len() {
        for (sa, sb) in samples_a.iter().zip(samples_b) {
            total += 1;
            if sq_euclidean(sa, sb) <= eps_sq {
                hits += 1;
            }
        }
    } else {
        for sa in samples_a {
            for sb in samples_b {
                total += 1;
                if sq_euclidean(sa, sb) <= eps_sq {
                    hits += 1;
                }
            }
        }
    }
    hits as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdf::UnivariatePdf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gaussian_obj(mu: &[f64], sd: f64) -> UncertainObject {
        UncertainObject::new(mu.iter().map(|&m| UnivariatePdf::normal(m, sd)).collect())
    }

    #[test]
    fn eq8_closed_form_matches_sampling() {
        let o = gaussian_obj(&[1.0, 2.0], 0.5);
        let y = [0.0, 0.0];
        let closed = expected_sq_distance_to_point(&o, &y);
        let mut rng = StdRng::seed_from_u64(3);
        let samples = o.sample_n(&mut rng, 300_000);
        let approx = expected_distance_sampled(&samples, &y, Metric::SquaredEuclidean);
        assert!(
            (closed - approx).abs() / closed < 5e-3,
            "Eq. (8): closed {closed} vs sampled {approx}"
        );
    }

    #[test]
    fn eq8_decomposition() {
        // ED(o, y) = ED(o, mu(o)) + ||y - mu(o)||^2.
        let o = gaussian_obj(&[3.0], 0.7);
        let y = [1.0];
        let lhs = expected_sq_distance_to_point(&o, &y);
        let rhs = self_expected_sq_distance(&o) + sq_euclidean(o.mu(), &y);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn lemma3_closed_form_matches_sampling() {
        let a = gaussian_obj(&[0.0, 0.0], 1.0);
        let b = gaussian_obj(&[2.0, -1.0], 0.3);
        let closed = expected_sq_distance(&a, &b);
        let mut rng = StdRng::seed_from_u64(4);
        let sa = a.sample_n(&mut rng, 200_000);
        let sb = b.sample_n(&mut rng, 200_000);
        let approx = expected_distance_between_sampled(&sa, &sb, Metric::SquaredEuclidean);
        assert!(
            (closed - approx).abs() / closed < 1e-2,
            "Lemma 3: closed {closed} vs sampled {approx}"
        );
    }

    #[test]
    fn lemma3_from_moments_agrees_with_object_form() {
        let a = gaussian_obj(&[1.0, -1.0], 0.4);
        let b = gaussian_obj(&[0.5, 2.0], 0.9);
        let via_objects = expected_sq_distance(&a, &b);
        let via_moments = expected_sq_distance_from_moments(a.mu(), a.mu2(), b.mu(), b.mu2());
        assert!((via_objects - via_moments).abs() < 1e-9);
    }

    #[test]
    fn expected_sq_distance_is_symmetric_and_positive_for_distinct() {
        let a = gaussian_obj(&[0.0], 0.1);
        let b = gaussian_obj(&[1.0], 0.1);
        assert_eq!(expected_sq_distance(&a, &b), expected_sq_distance(&b, &a));
        assert!(expected_sq_distance(&a, &b) > 0.0);
        // Note ÊD(o, o) = 2 sigma^2(o) != 0 for uncertain objects: ÊD is not
        // a metric, exactly as in the paper's Eq. (13) usage.
        assert!((expected_sq_distance(&a, &a) - 2.0 * a.total_variance()).abs() < 1e-12);
    }

    #[test]
    fn euclidean_metric_sampled_distance_exceeds_point_distance() {
        // Jensen: E||X - y|| >= ||E X - y|| is false in general, but
        // E||X - y||^2 >= ||EX - y||^2 always (variance is non-negative).
        let o = gaussian_obj(&[0.0, 0.0], 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let s = o.sample_n(&mut rng, 100_000);
        let y = [3.0, 4.0];
        let ed2 = expected_distance_sampled(&s, &y, Metric::SquaredEuclidean);
        assert!(ed2 > sq_euclidean(o.mu(), &y));
    }

    #[test]
    fn distance_probability_basics() {
        let a = UncertainObject::deterministic(&[0.0]);
        let b = UncertainObject::deterministic(&[3.0]);
        let mut rng = StdRng::seed_from_u64(6);
        let sa = a.sample_n(&mut rng, 16);
        let sb = b.sample_n(&mut rng, 16);
        assert_eq!(distance_probability(&sa, &sb, 2.0), 0.0);
        assert_eq!(distance_probability(&sa, &sb, 3.5), 1.0);
    }

    #[test]
    fn cross_product_estimator_used_for_unequal_sample_counts() {
        let a = UncertainObject::deterministic(&[0.0]);
        let b = UncertainObject::deterministic(&[1.0]);
        let mut rng = StdRng::seed_from_u64(7);
        let sa = a.sample_n(&mut rng, 4);
        let sb = b.sample_n(&mut rng, 8);
        let d = expected_distance_between_sampled(&sa, &sb, Metric::Euclidean);
        assert!((d - 1.0).abs() < 1e-12);
    }
}
