//! First- and second-order moment vectors of uncertain objects (Eqs. 2–6).
//!
//! Every fast algorithm in the paper — UCPC, UK-means, MMVar, UK-medoids'
//! linkage — consumes uncertain objects exclusively through the per-dimension
//! moments `mu_j`, `(mu_2)_j`, `(sigma^2)_j`. [`Moments`] precomputes and
//! stores them once per object (Line 1 of Algorithm 1), so that the clustering
//! loops never touch a pdf again.

use crate::arena::MomentView;
use serde::{Deserialize, Serialize};

/// Per-dimension expected value, second-order moment and variance of an
/// uncertain object, plus the aggregated "global" variance of Eq. (6) and the
/// scalar aggregates consumed by the delta-`J` kernel
/// (see [`crate::arena`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Moments {
    mu: Box<[f64]>,
    mu2: Box<[f64]>,
    var: Box<[f64]>,
    total_var: f64,
    sum_mu_sq: f64,
    sum_mu2: f64,
    norm_mu: f64,
}

impl Moments {
    /// Builds moments from the per-dimension expected values and second-order
    /// moments; variances follow from Eq. (5), `sigma^2_j = (mu_2)_j - mu_j^2`.
    ///
    /// Tiny negative variances caused by floating-point cancellation are
    /// clamped to zero so degenerate (point-mass) dimensions are exact.
    pub fn from_mu_mu2(mu: Vec<f64>, mu2: Vec<f64>) -> Self {
        assert_eq!(mu.len(), mu2.len(), "moment vectors must have equal length");
        let var: Box<[f64]> = mu
            .iter()
            .zip(&mu2)
            .map(|(&m, &m2)| (m2 - m * m).max(0.0))
            .collect();
        let total_var = var.iter().sum();
        let sum_mu_sq: f64 = mu.iter().map(|&m| m * m).sum();
        let sum_mu2 = mu2.iter().sum();
        Self {
            mu: mu.into(),
            mu2: mu2.into(),
            var,
            total_var,
            sum_mu_sq,
            sum_mu2,
            norm_mu: sum_mu_sq.sqrt(),
        }
    }

    /// Moments of a deterministic point (`sigma^2 = 0` everywhere).
    pub fn of_point(x: &[f64]) -> Self {
        Self::from_mu_mu2(x.to_vec(), x.iter().map(|&v| v * v).collect())
    }

    /// Empirical moments of a sample set (rows are `m`-dimensional samples).
    pub fn from_samples(samples: &[Vec<f64>]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let m = samples[0].len();
        let inv = 1.0 / samples.len() as f64;
        let mut mu = vec![0.0; m];
        let mut mu2 = vec![0.0; m];
        for s in samples {
            assert_eq!(s.len(), m, "ragged sample matrix");
            for j in 0..m {
                mu[j] += s[j];
                mu2[j] += s[j] * s[j];
            }
        }
        for j in 0..m {
            mu[j] *= inv;
            mu2[j] *= inv;
        }
        Self::from_mu_mu2(mu, mu2)
    }

    /// Number of dimensions `m`.
    pub fn dims(&self) -> usize {
        self.mu.len()
    }

    /// Expected-value vector (Eq. 2).
    pub fn mu(&self) -> &[f64] {
        &self.mu
    }

    /// Second-order moment vector (Eq. 2).
    pub fn mu2(&self) -> &[f64] {
        &self.mu2
    }

    /// Variance vector (Eq. 3).
    pub fn variance(&self) -> &[f64] {
        &self.var
    }

    /// "Global" scalar variance, Eq. (6): `sigma^2(o) = || sigma^2 vec ||_1`.
    pub fn total_variance(&self) -> f64 {
        self.total_var
    }

    /// `Σ_j mu_j²` — precomputed for the delta-`J` kernel.
    pub fn sum_mu_sq(&self) -> f64 {
        self.sum_mu_sq
    }

    /// `Σ_j (mu_2)_j` — the object's contribution to `Φ_tot`.
    pub fn sum_mu2(&self) -> f64 {
        self.sum_mu2
    }

    /// `‖mu‖ = sqrt(Σ_j mu_j²)` — precomputed for the pruning drift bounds.
    pub fn norm_mu(&self) -> f64 {
        self.norm_mu
    }

    /// Rebuilds owned moments from a kernel view, copying every field —
    /// the variance row and all four scalar aggregates included —
    /// **verbatim**, without re-deriving anything. A round trip through
    /// [`Self::view`] (or through an arena row written by
    /// [`crate::arena::MomentArena::push`] /
    /// [`crate::arena::MomentArena::overwrite_row`], which copy the same
    /// fields bit for bit) therefore reproduces the original `Moments`
    /// exactly. This is the staging→commit hop of the serving layer: an
    /// arrival staged into a scratch arena row commits into the engine's
    /// store with precisely the bits a direct `insert` would have stored.
    pub fn from_view(v: &MomentView<'_>) -> Self {
        debug_assert_eq!(v.mu.len(), v.mu2.len());
        debug_assert_eq!(v.mu.len(), v.var.len());
        Self {
            mu: v.mu.into(),
            mu2: v.mu2.into(),
            var: v.var.into(),
            total_var: v.sum_var,
            sum_mu_sq: v.sum_mu_sq,
            sum_mu2: v.sum_mu2,
            norm_mu: v.norm_mu,
        }
    }

    /// Kernel view over these moments (same shape as
    /// [`crate::arena::MomentArena::view`], for callers that hold moments
    /// outside an arena, e.g. streaming insertion).
    pub fn view(&self) -> MomentView<'_> {
        MomentView {
            mu: &self.mu,
            mu2: &self.mu2,
            var: &self.var,
            sum_mu_sq: self.sum_mu_sq,
            sum_mu2: self.sum_mu2,
            sum_var: self.total_var,
            norm_mu: self.norm_mu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_moments_have_zero_variance() {
        let m = Moments::of_point(&[1.0, -2.0, 0.5]);
        assert_eq!(m.variance(), &[0.0, 0.0, 0.0]);
        assert_eq!(m.total_variance(), 0.0);
        assert_eq!(m.mu(), &[1.0, -2.0, 0.5]);
    }

    #[test]
    fn variance_is_mu2_minus_mu_squared() {
        let m = Moments::from_mu_mu2(vec![2.0], vec![6.0]);
        assert_eq!(m.variance(), &[2.0]);
        assert_eq!(m.total_variance(), 2.0);
    }

    #[test]
    fn negative_rounding_is_clamped() {
        let m = Moments::from_mu_mu2(vec![1.0], vec![1.0 - 1e-16]);
        assert_eq!(m.variance(), &[0.0]);
    }

    #[test]
    fn empirical_moments() {
        let samples = vec![vec![0.0, 1.0], vec![2.0, 1.0]];
        let m = Moments::from_samples(&samples);
        assert_eq!(m.mu(), &[1.0, 1.0]);
        assert_eq!(m.mu2(), &[2.0, 1.0]);
        assert_eq!(m.variance(), &[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_moments_panic() {
        let _ = Moments::from_mu_mu2(vec![1.0], vec![1.0, 2.0]);
    }

    #[test]
    fn from_view_round_trips_bit_for_bit() {
        let m = Moments::from_mu_mu2(vec![1.5, -2.25, 0.125], vec![3.0, 5.5, 0.75]);
        let rebuilt = Moments::from_view(&m.view());
        assert_eq!(rebuilt, m);
        // PartialEq compares f64 fields, but pin the scalar bits explicitly:
        // from_view must copy, never re-derive.
        assert_eq!(
            rebuilt.total_variance().to_bits(),
            m.total_variance().to_bits()
        );
        assert_eq!(rebuilt.sum_mu_sq().to_bits(), m.sum_mu_sq().to_bits());
        assert_eq!(rebuilt.sum_mu2().to_bits(), m.sum_mu2().to_bits());
        assert_eq!(rebuilt.norm_mu().to_bits(), m.norm_mu().to_bits());
    }
}
