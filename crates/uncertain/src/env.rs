//! One shared warn-and-fall-back parser for every `UCPC_*` environment knob.
//!
//! The workspace reads its runtime knobs (`UCPC_SIMD`, `UCPC_PRUNING`,
//! `UCPC_STREAMING`, `UCPC_THREADS`, `UCPC_PARALLEL`, `UCPC_BATCH`,
//! `UCPC_STABILIZE`) from the environment, and every knob shares one
//! failure policy: an **unset** knob silently takes the default, while a
//! **set-but-invalid** value warns once on stderr — naming the knob, the
//! rejected value and the accepted forms — and then falls back to the
//! default. Historically `UCPC_SIMD` warned while the other knobs fell back
//! silently, so a typo like `UCPC_PRUNING=bonds` silently benchmarked the
//! wrong configuration; routing every knob through [`read_knob`] makes a
//! typo loud everywhere.
//!
//! The parsing itself lives in the pure [`parse_knob`], which touches no
//! process state: unit tests feed it raw strings directly and stay immune
//! to the env-var races a multi-threaded test harness would otherwise hit
//! (`std::env::set_var` is unsafe to interleave with reads from other
//! threads, so tests never set real variables).

/// How a knob string was resolved: which value applies, and whether a
/// warning about an invalid value was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobOutcome<T> {
    /// The variable was unset (or parsing is skipped): use the default.
    Unset,
    /// The variable held a valid value.
    Parsed(T),
    /// The variable was set but invalid: a warning was printed, use the
    /// default.
    Invalid,
}

impl<T> KnobOutcome<T> {
    /// The parsed value, if any — `Unset` and `Invalid` both mean "use the
    /// caller's default".
    pub fn value(self) -> Option<T> {
        match self {
            KnobOutcome::Parsed(v) => Some(v),
            _ => None,
        }
    }
}

/// Pure worker behind [`read_knob`]: resolves one knob from an
/// already-fetched raw string. `expected` describes the accepted forms for
/// the warning (e.g. `"off|bounds"`); `parse` maps the trimmed,
/// ASCII-lowercased value to `Some(T)` when valid.
///
/// Returns the outcome and, for an invalid value, the warning line that
/// [`read_knob`] prints — exposed so unit tests can assert on the exact
/// message without capturing stderr.
pub fn parse_knob<T>(
    name: &str,
    raw: Option<&str>,
    expected: &str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> (KnobOutcome<T>, Option<String>) {
    let Some(raw) = raw else {
        return (KnobOutcome::Unset, None);
    };
    let cleaned = raw.trim().to_ascii_lowercase();
    match parse(&cleaned) {
        Some(v) => (KnobOutcome::Parsed(v), None),
        None => {
            let warning = format!("{name}={raw:?} is not one of {expected}; using the default");
            (KnobOutcome::Invalid, Some(warning))
        }
    }
}

/// Reads the environment variable `name` and resolves it through
/// [`parse_knob`], printing the warning line to stderr when the value is
/// set but invalid. Returns `None` for both the unset and the invalid case
/// — callers supply their own default via `unwrap_or`.
pub fn read_knob<T>(
    name: &str,
    expected: &str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Option<T> {
    let raw = std::env::var(name).ok();
    let (outcome, warning) = parse_knob(name, raw.as_deref(), expected, parse);
    if let Some(w) = warning {
        eprintln!("{w}");
    }
    outcome.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pruning(v: &str) -> Option<bool> {
        match v {
            "bounds" | "on" | "1" => Some(true),
            "off" | "0" => Some(false),
            _ => None,
        }
    }

    #[test]
    fn unset_is_silent_default() {
        let (outcome, warning) = parse_knob("UCPC_PRUNING", None, "off|bounds", pruning);
        assert_eq!(outcome, KnobOutcome::Unset);
        assert_eq!(warning, None);
        assert_eq!(outcome.value(), None);
    }

    #[test]
    fn valid_value_parses_case_insensitively_with_whitespace() {
        let (outcome, warning) =
            parse_knob("UCPC_PRUNING", Some("  Bounds "), "off|bounds", pruning);
        assert_eq!(outcome, KnobOutcome::Parsed(true));
        assert_eq!(warning, None);
        assert_eq!(outcome.value(), Some(true));
    }

    #[test]
    fn invalid_value_warns_and_falls_back() {
        let (outcome, warning) = parse_knob("UCPC_PRUNING", Some("bonds"), "off|bounds", pruning);
        assert_eq!(outcome, KnobOutcome::Invalid);
        assert_eq!(
            warning.as_deref(),
            Some("UCPC_PRUNING=\"bonds\" is not one of off|bounds; using the default")
        );
        assert_eq!(outcome.value(), None);
    }

    #[test]
    fn numeric_knob_rejects_zero_and_garbage() {
        let parse = |v: &str| v.parse::<usize>().ok().filter(|&t| t > 0);
        let (ok, w) = parse_knob("UCPC_THREADS", Some("4"), "a positive integer", parse);
        assert_eq!((ok, w), (KnobOutcome::Parsed(4), None));
        let (zero, w) = parse_knob("UCPC_THREADS", Some("0"), "a positive integer", parse);
        assert_eq!(zero, KnobOutcome::Invalid);
        assert!(w.unwrap().contains("UCPC_THREADS=\"0\""));
        let (garbage, w) = parse_knob("UCPC_THREADS", Some("many"), "a positive integer", parse);
        assert_eq!(garbage, KnobOutcome::Invalid);
        assert!(w.unwrap().contains("a positive integer"));
    }
}
