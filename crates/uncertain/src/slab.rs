//! Slab-style moment storage for streaming workloads: a [`MomentArena`]
//! whose rows are recycled through a free-list, addressed by
//! generation-stamped [`ObjectHandle`]s.
//!
//! # Why a slab
//!
//! The batch pipeline fills a [`MomentArena`] once and never removes a row.
//! A streaming driver ([`IncrementalUcpc`]) continuously inserts arriving
//! objects and removes departed ones; storing each live object as its own
//! heap-allocated [`Moments`] (the pre-slab layout, `Vec<Option<Moments>>`)
//! gives up exactly the contiguity the batch path's kernel depends on —
//! every candidate scan chases three boxed slices per object — and pays
//! three allocator calls per insertion. [`SlabArena`] keeps the flat SoA
//! matrices and recycles rows instead: `remove` pushes the slot onto a
//! free-list, the next `insert` pops it and overwrites the row **in place**
//! ([`MomentArena::overwrite_row`] / [`MomentArena::overwrite_row_with`]),
//! so a steady-state insert-after-remove touches no allocator at all
//! (pinned by `tests/streaming_alloc_free.rs`) and the scan keeps streaming
//! contiguous rows.
//!
//! # Generation-stamped handles
//!
//! Because rows are recycled, a bare row index is ambiguous: after a
//! remove/insert pair the same index names a *different* object, and a
//! retained stale index would silently read the new occupant. Every slot
//! therefore carries a generation counter, bumped on each `remove`, and
//! [`SlabArena::insert`] returns an [`ObjectHandle`] pairing the slot with the
//! generation current at insertion time. A handle is valid exactly while
//! its object is live; any later use fails with a checked [`StaleHandle`]
//! error instead of aliasing the slot's next occupant. The stamp also
//! bounds every handle-indexed side structure at the live-window high-water
//! mark: slots are reused, so label maps and prune caches indexed by slot
//! stop growing once the stream reaches steady state.
//!
//! The generation wraps at `u32::MAX`. A stale handle could only be
//! mistaken for live again after exactly 2³² removals of *its own slot*
//! while the handle is still retained — at a million edits per second
//! against one slot that is over an hour of adversarial churn aimed at a
//! single held handle, and any interleaved edit of another slot resets the
//! clock. The wraparound behaviour itself is well-defined (wrapping
//! arithmetic, exercised by `from_parts`-seeded tests).
//!
//! # Why slot reuse stays bit-identical to fresh append
//!
//! The recycling insert must be indistinguishable from inserting into a
//! never-used slab, or streaming results would depend on the churn history.
//! Three facts make it so:
//!
//! 1. **Rows are written whole.** [`MomentArena::overwrite_row`] copies the
//!    `mu`/`mu2` rows verbatim and re-derives `var` and the scalar
//!    aggregates through the *same* canonical per-dimension fold as the
//!    append path ([`MomentArena::push`]); no bit of the previous occupant
//!    survives. The arena's unit tests pin overwrite-equals-append bitwise.
//! 2. **Freed rows are never read.** `view`/`get` refuse non-live slots, so
//!    the garbage a departed object leaves behind is unobservable; only the
//!    liveness flag and generation change at `remove` time.
//! 3. **The generation stamp lives outside the numeric state.** It gates
//!    *access* but never feeds the kernels, so two slabs holding the same
//!    live rows produce identical kernel views regardless of how many
//!    generations each slot has consumed.
//!
//! Together these give the invariant the incremental driver's consistency
//! suite pins: a slab that reached a live set via arbitrary churn serves
//! the same bits as one that appended exactly that live set fresh
//! (`tests/incremental_consistency.rs`, `tests/slab_handles.rs`).
//!
//! [`IncrementalUcpc`]: ../../ucpc_core/incremental/struct.IncrementalUcpc.html

use crate::arena::{MomentArena, MomentView};
use crate::moments::Moments;

/// A generation-stamped handle to one object stored in a [`SlabArena`] (or
/// in the incremental driver's reference backend, which mirrors the slab's
/// slot discipline).
///
/// `slot` is the storage row; `gen` is the slot's generation counter at
/// insertion time. The handle is valid exactly while the object it named
/// is live; after `remove` the slot's generation is bumped, so the stale
/// handle can never alias the slot's next occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectHandle {
    slot: u32,
    gen: u32,
}

impl ObjectHandle {
    /// Assembles a handle from raw parts (snapshot restore, tests). A
    /// fabricated handle is safe: every slab access checks it and returns
    /// [`StaleHandle`] unless it names the slot's current live occupant.
    pub fn new(slot: u32, gen: u32) -> Self {
        Self { slot, gen }
    }

    /// The storage slot (row index while live).
    pub fn slot(self) -> usize {
        self.slot as usize
    }

    /// The slot generation this handle was issued under.
    pub fn generation(self) -> u32 {
        self.gen
    }
}

/// Checked error for using an [`ObjectHandle`] whose object is gone (or
/// never existed): the slot is out of range, free, or occupied by a later
/// generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleHandle(pub ObjectHandle);

impl std::fmt::Display for StaleHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale handle: slot {} generation {} is not live",
            self.0.slot, self.0.gen
        )
    }
}

impl std::error::Error for StaleHandle {}

/// A [`MomentArena`] with free-list row reuse: O(1) `insert` (recycling a
/// freed row in place when one exists, appending otherwise) and O(1)
/// `remove`, with live rows served as contiguous kernel views and every
/// access checked against the handle's generation stamp.
///
/// ```
/// use ucpc_uncertain::{Moments, SlabArena};
///
/// let mut slab = SlabArena::new();
/// let a = slab.insert(&Moments::of_point(&[1.0, 2.0]));
/// let b = slab.insert(&Moments::of_point(&[3.0, 4.0]));
/// assert_eq!(slab.len(), 2);
///
/// slab.remove(a).unwrap();
/// // The freed row is recycled in place under a fresh generation: no new
/// // row is appended, and the stale handle is rejected, not aliased.
/// let c = slab.insert(&Moments::of_point(&[5.0, 6.0]));
/// assert_eq!(c.slot(), a.slot());
/// assert_ne!(c, a);
/// assert!(slab.get(a).is_err());
/// assert_eq!(slab.rows(), 2);
/// assert_eq!(slab.get(c).unwrap().mu, &[5.0, 6.0]);
/// assert_eq!(slab.get(b).unwrap().mu, &[3.0, 4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct SlabArena {
    arena: MomentArena,
    /// Slots of freed rows, popped LIFO by [`Self::insert`].
    free: Vec<u32>,
    /// Liveness flag per row — guards against double-free and views of
    /// freed rows, which would otherwise silently corrupt a clustering.
    occupied: Vec<bool>,
    /// Per-slot generation counter: the generation of the current occupant
    /// while the slot is live, and of the *next* occupant while it is free
    /// (bumped at `remove` time, wrapping).
    gens: Vec<u32>,
}

impl SlabArena {
    /// An empty slab; the dimensionality is pinned by the first insertion.
    pub fn new() -> Self {
        Self {
            arena: MomentArena::from_moments([]),
            free: Vec::new(),
            occupied: Vec::new(),
            gens: Vec::new(),
        }
    }

    /// An empty slab with `rows` rows of `m` dimensions pre-reserved, so
    /// the first `rows` insertions perform no column reallocation.
    pub fn with_capacity(rows: usize, m: usize) -> Self {
        let mut slab = Self::new();
        slab.reserve_rows(rows, m);
        slab
    }

    /// Reassembles a slab from its raw parts — the snapshot-restore
    /// constructor (and the test hook for seeding generations near
    /// wraparound). All per-row vectors must match the arena's row count,
    /// and `free` must list exactly the non-occupied slots.
    pub fn from_parts(
        arena: MomentArena,
        occupied: Vec<bool>,
        free: Vec<u32>,
        gens: Vec<u32>,
    ) -> Self {
        let rows = arena.len();
        assert_eq!(occupied.len(), rows, "occupied flags must cover every row");
        assert_eq!(gens.len(), rows, "generations must cover every row");
        let live = occupied.iter().filter(|&&o| o).count();
        assert_eq!(
            free.len(),
            rows - live,
            "free list must cover every freed row"
        );
        debug_assert!(free
            .iter()
            .all(|&s| (s as usize) < rows && !occupied[s as usize]));
        Self {
            arena,
            free,
            occupied,
            gens,
        }
    }

    /// Reserves space for `additional` more rows of `dims` dimensions —
    /// appended rows (moment columns, liveness flags, generation counters)
    /// *and* the free-list slots their later removal would need, so any
    /// insert/remove interleaving staying within the reservation triggers
    /// no reallocation anywhere in the slab.
    pub fn reserve_rows(&mut self, additional: usize, dims: usize) {
        self.arena.reserve_rows(additional, dims);
        self.occupied.reserve(additional);
        self.gens.reserve(additional);
        // Worst case every currently-live row and the whole reservation
        // are freed at once; free-list slots are one word each, so
        // reserve for that outright.
        self.free.reserve(self.len() + additional);
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.arena.len() - self.free.len()
    }

    /// Whether no live rows exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total rows backing the slab, live and freed: the high-water mark of
    /// concurrent liveness, and the bound on valid slots.
    pub fn rows(&self) -> usize {
        self.arena.len()
    }

    /// Number of freed rows awaiting reuse.
    pub fn free_rows(&self) -> usize {
        self.free.len()
    }

    /// The freed slots awaiting reuse, in push order (popped LIFO). Exposed
    /// for snapshotting: the order is part of the slab's logical state,
    /// since it decides which slot the next insertion lands on.
    pub fn free_slots(&self) -> &[u32] {
        &self.free
    }

    /// Number of dimensions `m` (0 until the first insertion).
    pub fn dims(&self) -> usize {
        self.arena.dims()
    }

    /// Whether slot `i` currently holds a live object.
    pub fn is_live(&self, i: usize) -> bool {
        self.occupied.get(i).copied().unwrap_or(false)
    }

    /// The generation counter of slot `i`: the current occupant's
    /// generation while live, the next occupant's while free.
    pub fn generation(&self, i: usize) -> u32 {
        self.gens[i]
    }

    /// Whether `h` names a live object (right slot, right generation).
    pub fn contains(&self, h: ObjectHandle) -> bool {
        self.is_live(h.slot()) && self.gens[h.slot()] == h.gen
    }

    fn stamp(&mut self, slot: usize) -> ObjectHandle {
        self.occupied[slot] = true;
        ObjectHandle {
            slot: u32::try_from(slot).expect("slab slot space exhausted (u32)"),
            gen: self.gens[slot],
        }
    }

    /// Inserts one object's moments, recycling a freed row in place when
    /// one exists (zero allocator calls) and appending a new row otherwise.
    /// Returns the object's generation-stamped handle.
    pub fn insert(&mut self, mo: &Moments) -> ObjectHandle {
        match self.free.pop() {
            Some(slot) => {
                let slot = slot as usize;
                self.arena.overwrite_row(slot, mo);
                self.stamp(slot)
            }
            None => {
                self.arena.push(mo);
                self.occupied.push(false);
                self.gens.push(0);
                self.stamp(self.arena.len() - 1)
            }
        }
    }

    /// Inserts one object from a `(mu_j, (mu_2)_j)` fill closure — the
    /// moments-free write path ([`MomentArena::push_row_with`] /
    /// [`MomentArena::overwrite_row_with`]): the variance and scalar
    /// aggregates are derived in the canonical fold order, so the row is
    /// bit-identical to inserting the equivalent [`Moments`]. Returns the
    /// object's handle.
    pub fn insert_with(
        &mut self,
        dims: usize,
        fill: impl FnMut(usize) -> (f64, f64),
    ) -> ObjectHandle {
        match self.free.pop() {
            Some(slot) => {
                let slot = slot as usize;
                self.arena.overwrite_row_with(slot, dims, fill);
                self.stamp(slot)
            }
            None => {
                self.arena.push_row_with(dims, fill);
                self.occupied.push(false);
                self.gens.push(0);
                self.stamp(self.arena.len() - 1)
            }
        }
    }

    /// Inserts one object copied **verbatim** from a kernel view — the
    /// [`MomentView`]-sourced counterpart of [`Self::insert`]
    /// ([`MomentArena::push_row_view`] / [`MomentArena::overwrite_row_view`]):
    /// every row and scalar is copied, never re-derived, so the inserted row
    /// is bit-identical to inserting the [`Moments`] behind the view. This
    /// is the serving layer's staging→store hop: an arrival staged in a
    /// scratch arena commits here without materialising an owned `Moments`.
    /// Returns the object's handle.
    pub fn insert_view(&mut self, v: &MomentView<'_>) -> ObjectHandle {
        match self.free.pop() {
            Some(slot) => {
                let slot = slot as usize;
                self.arena.overwrite_row_view(slot, v);
                self.stamp(slot)
            }
            None => {
                self.arena.push_row_view(v);
                self.occupied.push(false);
                self.gens.push(0);
                self.stamp(self.arena.len() - 1)
            }
        }
    }

    /// Frees the object behind `h` for reuse, bumping the slot's
    /// generation so `h` (and any copy of it) is permanently stale. The
    /// row's contents stay untouched until the next recycling insertion
    /// overwrites them. A handle that is already stale — double remove,
    /// slot since recycled — yields a checked [`StaleHandle`] error and
    /// changes nothing.
    pub fn remove(&mut self, h: ObjectHandle) -> Result<(), StaleHandle> {
        if !self.contains(h) {
            return Err(StaleHandle(h));
        }
        let slot = h.slot();
        self.occupied[slot] = false;
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(h.slot);
        Ok(())
    }

    /// The kernel view behind a live handle, or [`StaleHandle`] if the
    /// object is gone.
    pub fn get(&self, h: ObjectHandle) -> Result<MomentView<'_>, StaleHandle> {
        if !self.contains(h) {
            return Err(StaleHandle(h));
        }
        Ok(self.arena.view(h.slot()))
    }

    /// The kernel view of live slot `i` (see [`MomentArena::view`]) — the
    /// unstamped row access for iteration loops that already checked
    /// liveness. Panics on a freed slot.
    pub fn view(&self, i: usize) -> MomentView<'_> {
        assert!(self.is_live(i), "view of non-live slab row {i}");
        self.arena.view(i)
    }
}

impl Default for SlabArena {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mo(x: f64) -> Moments {
        Moments::from_mu_mu2(vec![x, -x], vec![x * x + 0.5, x * x + 1.0])
    }

    #[test]
    fn freed_rows_are_recycled_lifo() {
        let mut slab = SlabArena::new();
        let handles: Vec<ObjectHandle> = (0..4).map(|i| slab.insert(&mo(i as f64))).collect();
        assert_eq!(
            handles.iter().map(|h| h.slot()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert!(handles.iter().all(|h| h.generation() == 0));
        slab.remove(handles[1]).unwrap();
        slab.remove(handles[3]).unwrap();
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.free_rows(), 2);
        // LIFO: last freed, first reused; no appends while rows are free.
        let r3 = slab.insert(&mo(10.0));
        let r1 = slab.insert(&mo(11.0));
        assert_eq!((r3.slot(), r3.generation()), (3, 1));
        assert_eq!((r1.slot(), r1.generation()), (1, 1));
        assert_eq!(slab.rows(), 4);
        let appended = slab.insert(&mo(12.0));
        assert_eq!(
            (appended.slot(), appended.generation()),
            (4, 0),
            "free list empty: append under generation 0"
        );
    }

    #[test]
    fn recycled_rows_serve_the_new_objects_bits() {
        let mut slab = SlabArena::new();
        let a = slab.insert(&mo(1.0));
        let b = slab.insert(&mo(2.0));
        slab.remove(a).unwrap();
        let c = slab.insert(&mo(3.0));
        assert_eq!(c.slot(), a.slot());
        assert_eq!(c.generation(), a.generation() + 1);
        let fresh = mo(3.0);
        let v = slab.get(c).unwrap();
        assert_eq!(v.mu, fresh.mu());
        assert_eq!(v.mu2, fresh.mu2());
        assert_eq!(v.var, fresh.variance());
        assert_eq!(v.sum_mu_sq.to_bits(), fresh.sum_mu_sq().to_bits());
        assert_eq!(v.sum_mu2.to_bits(), fresh.sum_mu2().to_bits());
        assert_eq!(v.sum_var.to_bits(), fresh.total_variance().to_bits());
        assert_eq!(v.norm_mu.to_bits(), fresh.norm_mu().to_bits());
        // The untouched neighbour is unaffected.
        assert_eq!(slab.get(b).unwrap().mu, mo(2.0).mu());
    }

    #[test]
    fn insert_with_matches_insert_bitwise() {
        let mut by_moments = SlabArena::new();
        let mut by_fill = SlabArena::new();
        let mut hm = Vec::new();
        let mut hf = Vec::new();
        for i in 0..3 {
            let m = mo(i as f64 * 0.7 - 1.0);
            hm.push(by_moments.insert(&m));
            hf.push(by_fill.insert_with(2, |j| (m.mu()[j], m.mu2()[j])));
        }
        assert_eq!(hm, hf, "both write paths must issue identical handles");
        // Churn a slot through both write paths.
        by_moments.remove(hm[1]).unwrap();
        by_fill.remove(hf[1]).unwrap();
        let m = mo(42.0);
        let rm = by_moments.insert(&m);
        let rf = by_fill.insert_with(2, |j| (m.mu()[j], m.mu2()[j]));
        assert_eq!(rm, rf);
        for i in 0..3 {
            let a = by_moments.view(i);
            let b = by_fill.view(i);
            assert_eq!(a.mu, b.mu);
            assert_eq!(a.mu2, b.mu2);
            assert_eq!(a.var, b.var);
            assert_eq!(a.sum_mu_sq.to_bits(), b.sum_mu_sq.to_bits());
            assert_eq!(a.sum_var.to_bits(), b.sum_var.to_bits());
            assert_eq!(a.norm_mu.to_bits(), b.norm_mu.to_bits());
        }
    }

    #[test]
    fn insert_view_matches_insert_bitwise() {
        let mut by_moments = SlabArena::new();
        let mut by_view = SlabArena::new();
        let mut hm = Vec::new();
        let mut hv = Vec::new();
        for i in 0..3 {
            let m = mo(i as f64 * 0.7 - 1.0);
            hm.push(by_moments.insert(&m));
            hv.push(by_view.insert_view(&m.view()));
        }
        assert_eq!(hm, hv, "both write paths must issue identical handles");
        // Churn a slot through both write paths (recycling overwrite).
        by_moments.remove(hm[1]).unwrap();
        by_view.remove(hv[1]).unwrap();
        let m = mo(42.0);
        let rm = by_moments.insert(&m);
        let rv = by_view.insert_view(&m.view());
        assert_eq!(rm, rv);
        for i in 0..3 {
            let a = by_moments.view(i);
            let b = by_view.view(i);
            assert_eq!(a.mu, b.mu);
            assert_eq!(a.mu2, b.mu2);
            assert_eq!(a.var, b.var);
            assert_eq!(a.sum_mu_sq.to_bits(), b.sum_mu_sq.to_bits());
            assert_eq!(a.sum_mu2.to_bits(), b.sum_mu2.to_bits());
            assert_eq!(a.sum_var.to_bits(), b.sum_var.to_bits());
            assert_eq!(a.norm_mu.to_bits(), b.norm_mu.to_bits());
        }
    }

    #[test]
    fn double_free_is_a_checked_error() {
        let mut slab = SlabArena::new();
        let a = slab.insert(&mo(1.0));
        slab.remove(a).unwrap();
        assert_eq!(slab.remove(a), Err(StaleHandle(a)));
        // The failed remove changed nothing: the slot is still reusable
        // exactly once.
        let b = slab.insert(&mo(2.0));
        assert_eq!(b.slot(), a.slot());
        assert_eq!(slab.free_rows(), 0);
    }

    #[test]
    fn stale_handle_cannot_alias_the_next_occupant() {
        let mut slab = SlabArena::new();
        let a = slab.insert(&mo(1.0));
        slab.remove(a).unwrap();
        let b = slab.insert(&mo(2.0));
        assert_eq!(b.slot(), a.slot(), "slot is recycled");
        assert_eq!(slab.get(a).unwrap_err(), StaleHandle(a));
        assert_eq!(
            slab.remove(a),
            Err(StaleHandle(a)),
            "stale remove must not evict the new occupant"
        );
        assert!(slab.contains(b));
    }

    #[test]
    #[should_panic(expected = "view of non-live slab row")]
    fn view_of_freed_row_panics() {
        let mut slab = SlabArena::new();
        let a = slab.insert(&mo(1.0));
        slab.remove(a).unwrap();
        let _ = slab.view(a.slot());
    }

    #[test]
    fn generation_wraps_without_aliasing() {
        // Seed a slot one removal away from u32 wraparound via from_parts.
        let arena = MomentArena::from_moments([&mo(1.0)]);
        let mut slab = SlabArena::from_parts(arena, vec![true], vec![], vec![u32::MAX]);
        let held = ObjectHandle::new(0, u32::MAX);
        assert!(slab.contains(held));
        slab.remove(held).unwrap();
        assert_eq!(slab.generation(0), 0, "generation wraps to 0");
        let next = slab.insert(&mo(2.0));
        assert_eq!((next.slot(), next.generation()), (0, 0));
        assert_eq!(slab.get(held).unwrap_err(), StaleHandle(held));
        assert_eq!(slab.get(next).unwrap().mu, mo(2.0).mu());
    }

    #[test]
    fn with_capacity_pre_reserves() {
        let mut slab = SlabArena::with_capacity(8, 2);
        assert_eq!(slab.dims(), 2);
        for i in 0..8 {
            slab.insert(&mo(i as f64));
        }
        assert_eq!(slab.len(), 8);
    }
}
