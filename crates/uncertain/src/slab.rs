//! Slab-style moment storage for streaming workloads: a [`MomentArena`]
//! whose rows are recycled through a free-list.
//!
//! # Why a slab
//!
//! The batch pipeline fills a [`MomentArena`] once and never removes a row.
//! A streaming driver ([`IncrementalUcpc`]) continuously inserts arriving
//! objects and removes departed ones; storing each live object as its own
//! heap-allocated [`Moments`] (the pre-slab layout, `Vec<Option<Moments>>`)
//! gives up exactly the contiguity the batch path's kernel depends on —
//! every candidate scan chases three boxed slices per object — and pays
//! three allocator calls per insertion. [`SlabArena`] keeps the flat SoA
//! matrices and recycles rows instead: `remove` pushes the row index onto a
//! free-list, the next `insert` pops it and overwrites the row **in place**
//! ([`MomentArena::overwrite_row`] / [`MomentArena::overwrite_row_with`]),
//! so a steady-state insert-after-remove touches no allocator at all
//! (pinned by `tests/streaming_alloc_free.rs`) and the scan keeps streaming
//! contiguous rows.
//!
//! # Why row reuse preserves bit-exactness
//!
//! The overwrite path writes the same bits a fresh [`MomentArena::push`] of
//! the same moments would have appended: the three moment rows are copied
//! verbatim, and the derived variance and scalar aggregates are folded in
//! the identical per-dimension order as the append path (asserted by the
//! arena's unit tests). A [`MomentView`] served out of a recycled row is
//! therefore indistinguishable — bit for bit — from one served out of a
//! freshly appended row or out of a standalone [`Moments`], which is what
//! lets the slab-backed incremental driver produce byte-identical labels to
//! the per-object reference path (`tests/incremental_consistency.rs` pins
//! this across pruning configurations and SIMD backends).
//!
//! Row indices are *not* stable identifiers across a remove/insert pair —
//! the whole point is that they are recycled. Callers that need stable
//! handles (e.g. `IncrementalUcpc`'s `ObjectId`) keep their own
//! handle → row map; the slab guarantees only that a row stays pinned and
//! untouched between the `insert` that returned it and the `remove` that
//! frees it.
//!
//! [`IncrementalUcpc`]: ../../ucpc_core/incremental/struct.IncrementalUcpc.html

use crate::arena::{MomentArena, MomentView};
use crate::moments::Moments;

/// A [`MomentArena`] with free-list row reuse: O(1) `insert` (recycling a
/// freed row in place when one exists, appending otherwise) and O(1)
/// `remove`, with live rows served as contiguous kernel views.
///
/// ```
/// use ucpc_uncertain::{Moments, SlabArena};
///
/// let mut slab = SlabArena::new();
/// let a = slab.insert(&Moments::of_point(&[1.0, 2.0]));
/// let b = slab.insert(&Moments::of_point(&[3.0, 4.0]));
/// assert_eq!(slab.len(), 2);
///
/// slab.remove(a);
/// // The freed row is recycled in place: no new row is appended.
/// let c = slab.insert(&Moments::of_point(&[5.0, 6.0]));
/// assert_eq!(c, a);
/// assert_eq!(slab.rows(), 2);
/// assert_eq!(slab.view(c).mu, &[5.0, 6.0]);
/// assert_eq!(slab.view(b).mu, &[3.0, 4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct SlabArena {
    arena: MomentArena,
    /// Indices of freed rows, popped LIFO by [`Self::insert`].
    free: Vec<usize>,
    /// Liveness flag per row — guards against double-free and views of
    /// freed rows, which would otherwise silently corrupt a clustering.
    occupied: Vec<bool>,
}

impl SlabArena {
    /// An empty slab; the dimensionality is pinned by the first insertion.
    pub fn new() -> Self {
        Self {
            arena: MomentArena::from_moments([]),
            free: Vec::new(),
            occupied: Vec::new(),
        }
    }

    /// An empty slab with `rows` rows of `m` dimensions pre-reserved, so
    /// the first `rows` insertions perform no column reallocation.
    pub fn with_capacity(rows: usize, m: usize) -> Self {
        let mut slab = Self::new();
        slab.reserve_rows(rows, m);
        slab
    }

    /// Reserves space for `additional` more rows of `dims` dimensions —
    /// appended rows (moment columns + liveness flags) *and* the free-list
    /// slots their later removal would need, so any insert/remove
    /// interleaving staying within the reservation triggers no
    /// reallocation anywhere in the slab.
    pub fn reserve_rows(&mut self, additional: usize, dims: usize) {
        self.arena.reserve_rows(additional, dims);
        self.occupied.reserve(additional);
        // Worst case every currently-live row and the whole reservation
        // are freed at once; free-list slots are one word each, so
        // reserve for that outright.
        self.free.reserve(self.len() + additional);
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.arena.len() - self.free.len()
    }

    /// Whether no live rows exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total rows backing the slab, live and freed: the high-water mark of
    /// concurrent liveness, and the bound on valid row indices.
    pub fn rows(&self) -> usize {
        self.arena.len()
    }

    /// Number of freed rows awaiting reuse.
    pub fn free_rows(&self) -> usize {
        self.free.len()
    }

    /// Number of dimensions `m` (0 until the first insertion).
    pub fn dims(&self) -> usize {
        self.arena.dims()
    }

    /// Whether row `i` currently holds a live object.
    pub fn is_live(&self, i: usize) -> bool {
        self.occupied.get(i).copied().unwrap_or(false)
    }

    /// Inserts one object's moments, recycling a freed row in place when
    /// one exists (zero allocator calls) and appending a new row otherwise.
    /// Returns the row index.
    pub fn insert(&mut self, mo: &Moments) -> usize {
        match self.free.pop() {
            Some(row) => {
                self.arena.overwrite_row(row, mo);
                self.occupied[row] = true;
                row
            }
            None => {
                self.arena.push(mo);
                self.occupied.push(true);
                self.arena.len() - 1
            }
        }
    }

    /// Inserts one object from a `(mu_j, (mu_2)_j)` fill closure — the
    /// moments-free write path ([`MomentArena::push_row_with`] /
    /// [`MomentArena::overwrite_row_with`]): the variance and scalar
    /// aggregates are derived in the canonical fold order, so the row is
    /// bit-identical to inserting the equivalent [`Moments`]. Returns the
    /// row index.
    pub fn insert_with(&mut self, dims: usize, fill: impl FnMut(usize) -> (f64, f64)) -> usize {
        match self.free.pop() {
            Some(row) => {
                self.arena.overwrite_row_with(row, dims, fill);
                self.occupied[row] = true;
                row
            }
            None => {
                self.arena.push_row_with(dims, fill);
                self.occupied.push(true);
                self.arena.len() - 1
            }
        }
    }

    /// Frees row `i` for reuse. The row's contents stay untouched until the
    /// next recycling insertion overwrites them. Panics on a row that is
    /// not live (double-free would alias two handles onto one row).
    pub fn remove(&mut self, i: usize) {
        assert!(self.is_live(i), "remove of non-live slab row {i}");
        self.occupied[i] = false;
        self.free.push(i);
    }

    /// The kernel view of live row `i` (see [`MomentArena::view`]). Panics
    /// on a freed row.
    pub fn view(&self, i: usize) -> MomentView<'_> {
        assert!(self.is_live(i), "view of non-live slab row {i}");
        self.arena.view(i)
    }
}

impl Default for SlabArena {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mo(x: f64) -> Moments {
        Moments::from_mu_mu2(vec![x, -x], vec![x * x + 0.5, x * x + 1.0])
    }

    #[test]
    fn freed_rows_are_recycled_lifo() {
        let mut slab = SlabArena::new();
        let rows: Vec<usize> = (0..4).map(|i| slab.insert(&mo(i as f64))).collect();
        assert_eq!(rows, vec![0, 1, 2, 3]);
        slab.remove(rows[1]);
        slab.remove(rows[3]);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.free_rows(), 2);
        // LIFO: last freed, first reused; no appends while rows are free.
        assert_eq!(slab.insert(&mo(10.0)), rows[3]);
        assert_eq!(slab.insert(&mo(11.0)), rows[1]);
        assert_eq!(slab.rows(), 4);
        assert_eq!(slab.insert(&mo(12.0)), 4, "free list empty: append");
    }

    #[test]
    fn recycled_rows_serve_the_new_objects_bits() {
        let mut slab = SlabArena::new();
        let a = slab.insert(&mo(1.0));
        let b = slab.insert(&mo(2.0));
        slab.remove(a);
        let c = slab.insert(&mo(3.0));
        assert_eq!(c, a);
        let fresh = mo(3.0);
        let v = slab.view(c);
        assert_eq!(v.mu, fresh.mu());
        assert_eq!(v.mu2, fresh.mu2());
        assert_eq!(v.var, fresh.variance());
        assert_eq!(v.sum_mu_sq.to_bits(), fresh.sum_mu_sq().to_bits());
        assert_eq!(v.sum_mu2.to_bits(), fresh.sum_mu2().to_bits());
        assert_eq!(v.sum_var.to_bits(), fresh.total_variance().to_bits());
        assert_eq!(v.norm_mu.to_bits(), fresh.norm_mu().to_bits());
        // The untouched neighbour is unaffected.
        assert_eq!(slab.view(b).mu, mo(2.0).mu());
    }

    #[test]
    fn insert_with_matches_insert_bitwise() {
        let mut by_moments = SlabArena::new();
        let mut by_fill = SlabArena::new();
        for i in 0..3 {
            let m = mo(i as f64 * 0.7 - 1.0);
            by_moments.insert(&m);
            by_fill.insert_with(2, |j| (m.mu()[j], m.mu2()[j]));
        }
        // Churn a slot through both write paths.
        by_moments.remove(1);
        by_fill.remove(1);
        let m = mo(42.0);
        by_moments.insert(&m);
        by_fill.insert_with(2, |j| (m.mu()[j], m.mu2()[j]));
        for i in 0..3 {
            let a = by_moments.view(i);
            let b = by_fill.view(i);
            assert_eq!(a.mu, b.mu);
            assert_eq!(a.mu2, b.mu2);
            assert_eq!(a.var, b.var);
            assert_eq!(a.sum_mu_sq.to_bits(), b.sum_mu_sq.to_bits());
            assert_eq!(a.sum_var.to_bits(), b.sum_var.to_bits());
            assert_eq!(a.norm_mu.to_bits(), b.norm_mu.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "remove of non-live slab row")]
    fn double_free_panics() {
        let mut slab = SlabArena::new();
        let a = slab.insert(&mo(1.0));
        slab.remove(a);
        slab.remove(a);
    }

    #[test]
    #[should_panic(expected = "view of non-live slab row")]
    fn view_of_freed_row_panics() {
        let mut slab = SlabArena::new();
        let a = slab.insert(&mo(1.0));
        slab.remove(a);
        let _ = slab.view(a);
    }

    #[test]
    fn with_capacity_pre_reserves() {
        let mut slab = SlabArena::with_capacity(8, 2);
        assert_eq!(slab.dims(), 2);
        for i in 0..8 {
            slab.insert(&mo(i as f64));
        }
        assert_eq!(slab.len(), 8);
    }
}
