//! Streaming scenario: maintain a live clustering of moving objects as
//! reports arrive and expire, using the incremental UCPC built on
//! Corollary 1 — no batch re-clustering.
//!
//! A dispatch center tracks delivery scooters across three districts.
//! Position reports stream in (each an uncertain object: a Uniform box grown
//! by the report's staleness); old reports expire. The incremental engine
//! inserts each arrival in O(k·m), removes expirations in O(m), and runs a
//! few relocation passes per tick. The final partition is cross-checked
//! against a batch run of the parallel UCPC variant.
//!
//! Run with: `cargo run --release --example streaming_fleet`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use ucpc::core::incremental::IncrementalUcpc;
use ucpc::core::parallel::ParallelUcpc;
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

fn report(rng: &mut StdRng, district: usize) -> UncertainObject {
    let centers = [(1.0, 1.0), (7.0, 2.0), (4.0, 7.0)];
    let (cx, cy) = centers[district];
    let px = cx + rng.gen_range(-0.7..0.7);
    let py = cy + rng.gen_range(-0.7..0.7);
    let staleness = rng.gen_range(0.05..0.5); // km of reachable drift
    UncertainObject::new(vec![
        UnivariatePdf::uniform_centered(px, staleness),
        UnivariatePdf::uniform_centered(py, staleness),
    ])
}

fn main() {
    let mut rng = StdRng::seed_from_u64(4242);
    let k = 3;
    let mut engine = IncrementalUcpc::new(2, k).expect("k > 0");
    let mut window = VecDeque::new(); // (handle, object) FIFO of live reports
    let window_size = 90;

    let ticks = 30;
    let arrivals_per_tick = 12;
    for tick in 0..ticks {
        // New reports arrive round-robin across districts.
        for a in 0..arrivals_per_tick {
            let district = (tick + a) % 3;
            let obj = report(&mut rng, district);
            let id = engine.insert(&obj).expect("2-d object");
            window.push_back((id, obj));
        }
        // Expire the oldest reports beyond the window.
        while window.len() > window_size {
            let (id, _) = window.pop_front().expect("non-empty");
            engine.remove(id).expect("window handles are live");
        }
        // A few relocation passes keep the partition near a local optimum.
        let moved = engine.stabilize(3);
        if tick % 10 == 9 {
            println!(
                "tick {tick:2}: {} live reports, objective {:.2}, sizes {:?}, {} relocations",
                engine.len(),
                engine.objective(),
                engine.sizes(),
                moved
            );
        }
    }

    // Cross-check: batch-cluster the final window with the parallel variant.
    let live: Vec<UncertainObject> = window.iter().map(|(_, o)| o.clone()).collect();
    let mut batch_rng = StdRng::seed_from_u64(7);
    let batch = ParallelUcpc::default()
        .run(&live, k, &mut batch_rng)
        .expect("valid input");
    println!(
        "\nbatch re-clustering (parallel UCPC): objective {:.2} vs incremental {:.2}",
        batch.objective,
        engine.objective()
    );
    let gap = (engine.objective() - batch.objective).abs() / batch.objective.max(f64::MIN_POSITIVE);
    println!(
        "relative objective gap: {:.1}% (both are local optima)",
        gap * 100.0
    );
}
