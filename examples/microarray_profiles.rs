//! Microarray scenario: cluster gene-expression profiles that carry
//! probe-level uncertainty.
//!
//! The paper's real-data evaluation (Table 3) clusters genes whose
//! measurements are Normal pdfs produced by the multi-mgMOS probe-level
//! model. This example simulates a small Leukaemia-like dataset, clusters it
//! with UCPC and the two closest competitors, and scores the results with
//! the internal criterion Q (no reference classification exists for real
//! microarray data — the simulator's latent groups are used here only to
//! show recovery is genuine).
//!
//! Run with: `cargo run --release --example microarray_profiles`

use rand::rngs::StdRng;
use rand::SeedableRng;
use ucpc::baselines::{MmVar, UkMeans};
use ucpc::core::framework::UncertainClusterer;
use ucpc::core::Ucpc;
use ucpc::datasets::microarray::{MicroarraySimulator, LEUKAEMIA};
use ucpc::eval::{f_measure, quality};

fn main() {
    let mut rng = StdRng::seed_from_u64(2012);
    let sim = MicroarraySimulator {
        groups: 5,
        ..Default::default()
    };
    let data = sim.simulate_genes(LEUKAEMIA, 200, &mut rng);

    println!(
        "simulated {}: {} genes x {} arrays, probe-level Normal uncertainty",
        data.spec.name,
        data.objects.len(),
        data.objects[0].dims()
    );
    let avg_var: f64 =
        data.objects.iter().map(|o| o.total_variance()).sum::<f64>() / data.objects.len() as f64;
    println!("mean per-gene total variance: {avg_var:.3} (log2 units squared)\n");

    let k = 5;
    let algorithms: Vec<(&str, Box<dyn UncertainClusterer>)> = vec![
        ("UCPC", Box::new(Ucpc::default())),
        ("UKM", Box::new(UkMeans::default())),
        ("MMV", Box::new(MmVar::default())),
    ];

    println!(
        "{:6} {:>8} {:>8} {:>8} {:>10}",
        "algo", "intra", "inter", "Q", "F(latent)"
    );
    for (name, alg) in &algorithms {
        // Average over a few seeded runs, as the paper averages over 50.
        let runs = 10;
        let (mut qi, mut qe, mut qq, mut f) = (0.0, 0.0, 0.0, 0.0);
        for run in 0..runs {
            let mut rng = StdRng::seed_from_u64(500 + run);
            let c = alg
                .cluster(&data.objects, k, &mut rng)
                .expect("valid input");
            let q = quality(&data.objects, &c);
            qi += q.intra;
            qe += q.inter;
            qq += q.q;
            f += f_measure(&c, &data.latent_groups);
        }
        let inv = 1.0 / runs as f64;
        println!(
            "{name:6} {:>8.3} {:>8.3} {:>8.3} {:>10.3}",
            qi * inv,
            qe * inv,
            qq * inv,
            f * inv
        );
    }

    println!("\nHigher Q / F is better; Table 3 of the paper reports the full sweep");
    println!("over k in {{2,...,30}} — regenerate it with:");
    println!("  cargo run --release -p ucpc-bench --bin table3");
}
