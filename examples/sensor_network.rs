//! Sensor-network scenario: cluster imprecise sensor readings.
//!
//! The paper's introduction motivates uncertain data with sensor
//! measurements "imprecise at a certain degree due to the presence of various
//! noisy factors". This example simulates a field of temperature/humidity
//! sensors in three physical zones; each reported reading carries
//! sensor-specific Gaussian noise (cheap sensors are noisier). Clustering the
//! *readings with their uncertainty* (Case 2) recovers the zones more
//! reliably than clustering the noisy point estimates (Case 1) — the Θ
//! comparison of Section 5.1 in miniature.
//!
//! Run with: `cargo run --release --example sensor_network`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ucpc::core::Ucpc;
use ucpc::eval::f_measure;
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

fn main() {
    let mut rng = StdRng::seed_from_u64(2012);

    // Three climate zones with distinct (temperature C, humidity %) regimes.
    let zones = [(18.0, 40.0), (26.0, 65.0), (22.0, 85.0)];
    let sensors_per_zone = 40;

    let mut truth = Vec::new();
    let mut true_positions = Vec::new();
    let mut noisy_readings = Vec::new(); // Case 1: point estimates
    let mut uncertain_readings = Vec::new(); // Case 2: reading + noise model

    for (zone, &(t, h)) in zones.iter().enumerate() {
        for _ in 0..sensors_per_zone {
            // True state of this sensor's location.
            let true_t = t + rng.gen_range(-1.0..1.0);
            let true_h = h + rng.gen_range(-3.0..3.0);
            // Sensor quality: cheap sensors have sd up to 2.5C / 8% RH.
            let sd_t = rng.gen_range(0.3..2.5);
            let sd_h = rng.gen_range(1.0..8.0);
            // The reported reading is one noisy observation.
            let obs_t = true_t + gaussian(&mut rng) * sd_t;
            let obs_h = true_h + gaussian(&mut rng) * sd_h;

            truth.push(zone);
            true_positions.push((true_t, true_h));
            noisy_readings.push(UncertainObject::deterministic(&[obs_t, obs_h]));
            // The uncertainty-aware representation: the sensor knows its own
            // noise model, so the reading is a Normal centered on the
            // observation with the sensor's calibrated sd.
            uncertain_readings.push(UncertainObject::with_coverage(
                vec![
                    UnivariatePdf::normal(obs_t, sd_t),
                    UnivariatePdf::normal(obs_h, sd_h),
                ],
                0.95,
            ));
        }
    }

    let k = zones.len();
    let mut scores = (0.0, 0.0);
    let trials = 20;
    for trial in 0..trials {
        let mut r1 = StdRng::seed_from_u64(100 + trial);
        let mut r2 = StdRng::seed_from_u64(100 + trial);
        let c1 = Ucpc::default()
            .run(&noisy_readings, k, &mut r1)
            .unwrap()
            .clustering;
        let c2 = Ucpc::default()
            .run(&uncertain_readings, k, &mut r2)
            .unwrap()
            .clustering;
        scores.0 += f_measure(&c1, &truth);
        scores.1 += f_measure(&c2, &truth);
    }
    let f_case1 = scores.0 / trials as f64;
    let f_case2 = scores.1 / trials as f64;

    println!("sensors: {} in {} zones", truth.len(), k);
    println!("F-measure, Case 1 (ignore uncertainty):  {f_case1:.3}");
    println!("F-measure, Case 2 (model uncertainty):   {f_case2:.3}");
    println!(
        "Theta (Case 2 - Case 1):                 {:+.3}",
        f_case2 - f_case1
    );
    if f_case2 >= f_case1 {
        println!("\nModelling per-sensor noise helps zone recovery on this workload.");
    } else {
        println!("\nUnexpected: uncertainty modelling did not help on this seed.");
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}
