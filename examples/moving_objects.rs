//! Moving-objects scenario: cluster vehicles whose reported positions are
//! stale.
//!
//! The paper's second motivating domain: "moving objects continuously change
//! their location so that the exact positional information at a given time
//! can only be estimated" — position uncertainty grows with communication
//! latency. Each vehicle's position is modelled as a Uniform pdf over the
//! reachable box since its last report (speed x staleness); fleets operating
//! in three districts are recovered by UCPC, and the example shows how the
//! U-centroid of each recovered fleet is itself an uncertain object whose
//! region and variance reflect its members (Theorem 1 / Theorem 2).
//!
//! Run with: `cargo run --release --example moving_objects`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ucpc::core::ucentroid::UCentroid;
use ucpc::core::Ucpc;
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // Three districts of a city (km coordinates) with vehicle fleets.
    let districts = [(2.0, 3.0), (9.0, 1.5), (6.0, 8.5)];
    let vehicles_per_district = 25;

    let mut data = Vec::new();
    for &(dx, dy) in &districts {
        for _ in 0..vehicles_per_district {
            // Last reported position within the district.
            let px = dx + rng.gen_range(-0.8..0.8);
            let py = dy + rng.gen_range(-0.8..0.8);
            // Staleness (s) and speed (km/s) bound the reachable box.
            let staleness = rng.gen_range(1.0..30.0);
            let speed = rng.gen_range(0.005..0.02);
            let radius = f64::min(staleness * speed, 1.5);
            data.push(UncertainObject::new(vec![
                UnivariatePdf::uniform_centered(px, radius),
                UnivariatePdf::uniform_centered(py, radius),
            ]));
        }
    }

    let k = districts.len();
    let mut rng = StdRng::seed_from_u64(7);
    let result = Ucpc::default()
        .run(&data, k, &mut rng)
        .expect("valid input");
    println!(
        "clustered {} vehicles into {} fleets ({} iterations, objective {:.2})",
        data.len(),
        k,
        result.iterations,
        result.objective
    );

    // Inspect each fleet's U-centroid: an uncertain object in its own right.
    for (c, members) in result.clustering.members().iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let refs: Vec<&UncertainObject> = members.iter().map(|&i| &data[i]).collect();
        let centroid = UCentroid::from_cluster(&refs);
        println!(
            "fleet {c}: {:2} vehicles, U-centroid mu = ({:.2}, {:.2}) km, \
             region = [{:.2},{:.2}]x[{:.2},{:.2}], sigma^2 = {:.4}",
            members.len(),
            centroid.mu()[0],
            centroid.mu()[1],
            centroid.region().side(0).lo,
            centroid.region().side(0).hi,
            centroid.region().side(1).lo,
            centroid.region().side(1).hi,
            centroid.variance(),
        );
        // Theorem 2 in action: the centroid's variance is the member-variance
        // average divided by |C| — large fleets have precise centroids even
        // when individual positions are stale.
        let member_var: f64 = refs.iter().map(|o| o.total_variance()).sum();
        let theorem2 = member_var / (members.len() * members.len()) as f64;
        assert!((centroid.variance() - theorem2).abs() < 1e-9);
    }

    println!("\nTheorem 2 verified on every fleet: sigma^2(centroid) = (1/|C|^2) sum sigma^2(o).");
}
