//! Quickstart: cluster a handful of uncertain objects with UCPC and compare
//! the result against UK-means.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use ucpc::baselines::UkMeans;
use ucpc::core::framework::UncertainClusterer;
use ucpc::core::Ucpc;
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

fn main() {
    // Build nine 2-d uncertain objects: three tight groups, each object a
    // Normal pdf around its (unknown) true position, restricted to the
    // region holding 95% of its mass.
    let centers = [(0.0, 0.0), (8.0, 0.0), (4.0, 7.0)];
    let mut data = Vec::new();
    for &(cx, cy) in &centers {
        for d in 0..3 {
            let offset = d as f64 * 0.3;
            data.push(UncertainObject::with_coverage(
                vec![
                    UnivariatePdf::normal(cx + offset, 0.4),
                    UnivariatePdf::normal(cy - offset, 0.4),
                ],
                0.95,
            ));
        }
    }

    println!(
        "dataset: {} uncertain objects, {} dims",
        data.len(),
        data[0].dims()
    );
    for (i, o) in data.iter().enumerate() {
        println!(
            "  o{i}: mu = ({:+.2}, {:+.2})  sigma^2 = {:.3}  region dim-0 = [{:+.2}, {:+.2}]",
            o.mu()[0],
            o.mu()[1],
            o.total_variance(),
            o.region().side(0).lo,
            o.region().side(0).hi,
        );
    }

    // UCPC: local search over relocations, closed-form objective (Theorem 3).
    let mut rng = StdRng::seed_from_u64(7);
    let result = Ucpc::default()
        .run(&data, 3, &mut rng)
        .expect("valid input");
    println!(
        "\nUCPC: objective = {:.4}, {} iterations, {} relocations, converged = {}",
        result.objective, result.iterations, result.relocations, result.converged
    );
    println!("UCPC labels: {:?}", result.clustering.labels());

    // UK-means for comparison (it ignores object variances entirely).
    let mut rng = StdRng::seed_from_u64(7);
    let uk = UkMeans::default();
    let c = uk.cluster(&data, 3, &mut rng).expect("valid input");
    println!("UKM  labels: {:?}", c.labels());

    // Both recover the three groups on this easy instance; Table 2 of the
    // paper (and `cargo run -p ucpc-bench --bin table2`) shows where they
    // diverge once uncertainty actually matters.
}
