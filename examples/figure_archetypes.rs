//! The paper's Figure 1 / Figure 2 archetypes, evaluated numerically.
//!
//! * **Figure 1**: two clusters with the same central tendency but different
//!   member variances. UK-means' J_UK (and MMVar's J_MM, a constant multiple
//!   of it — Proposition 2) cannot rank them; UCPC's J can.
//! * **Figure 2**: far-apart low-variance objects vs close-together
//!   high-variance objects. A pure variance criterion (the U-centroid
//!   variance of Theorem 2) ranks them *backwards*; J ranks them correctly.
//!
//! Run with: `cargo run --release --example figure_archetypes`

use ucpc::core::objective::ClusterStats;
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

fn gaussians(centers: &[f64], sd: f64) -> Vec<UncertainObject> {
    centers
        .iter()
        .map(|&c| UncertainObject::new(vec![UnivariatePdf::normal(c, sd)]))
        .collect()
}

fn report(name: &str, stats: &ClusterStats) {
    println!(
        "  {name:22} J = {:>9.3}   J_UK = {:>9.3}   J_MM = {:>8.3}   var(U-centroid) = {:>8.4}",
        stats.j(),
        stats.j_uk(),
        stats.j_mm(),
        stats.ucentroid_variance()
    );
}

fn main() {
    println!("Figure 1 — same central tendency, different variance");
    let centers: Vec<f64> = (0..6).map(|i| i as f64 * 0.1).collect();
    let tight = gaussians(&centers, 0.05);
    let loose = gaussians(&centers, 3.0);
    let s_tight = ClusterStats::from_members(tight.iter());
    let s_loose = ClusterStats::from_members(loose.iter());
    report("low-variance cluster", &s_tight);
    report("high-variance cluster", &s_loose);
    println!(
        "  -> J_UK differs only through the variance constants; J separates them: {}\n",
        if s_tight.j() < s_loose.j() {
            "yes"
        } else {
            "NO (bug!)"
        }
    );

    println!("Figure 2 — compactness is not just variance");
    let far = gaussians(&[-10.0, 0.0, 10.0], 0.1);
    let close = gaussians(&[-0.5, 0.0, 0.5], 1.0);
    let s_far = ClusterStats::from_members(far.iter());
    let s_close = ClusterStats::from_members(close.iter());
    report("far apart, small var", &s_far);
    report("close, larger var", &s_close);
    println!(
        "  -> pure variance criterion prefers the WRONG cluster: {}",
        if s_far.ucentroid_variance() < s_close.ucentroid_variance() {
            "yes (as the paper warns)"
        } else {
            "no"
        }
    );
    println!(
        "  -> J prefers the genuinely compact cluster: {}",
        if s_close.j() < s_far.j() {
            "yes"
        } else {
            "NO (bug!)"
        }
    );

    println!("\nProposition identities on the Figure-2 'close' cluster:");
    let j_uk = s_close.j_uk();
    println!(
        "  J_MM = J_UK / |C|  : {:.6} = {:.6}",
        s_close.j_mm(),
        j_uk / 3.0
    );
    println!(
        "  J-hat = 2 J_UK     : {:.6} = {:.6}",
        s_close.j_hat(),
        2.0 * j_uk
    );
}
