//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use — range and
//! tuple strategies, `prop::collection::vec`, `prop_map`, the `proptest!`
//! macro with `#![proptest_config(..)]`, `prop_assert!`, `prop_assert_eq!`
//! and `prop_assume!` — on top of the vendored `rand`. Unlike upstream there
//! is no shrinking: a failing case panics with its deterministic case index,
//! which (together with the per-test seed derivation) is enough to reproduce
//! it exactly.

#![warn(missing_docs)]

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::SeedableRng;

/// The RNG handed to strategies; re-exported so the `proptest!` expansion can
/// name it through `$crate`.
pub type TestRng = rand::rngs::StdRng;

/// Builds the deterministic RNG for one test case: seed = hash(test name,
/// case index). Re-running a single failing case is therefore trivial.
pub fn seeded_rng(test_name: &str, case: u32) -> TestRng {
    let mut h = DefaultHasher::new();
    test_name.hash(&mut h);
    case.hash(&mut h);
    TestRng::seed_from_u64(h.finish())
}

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use rand::Rng;

    /// A generator of random values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategies!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// An inclusive size window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy producing `Vec`s of values drawn from `element`, with
    /// lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The items `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};

    /// Namespace mirror of upstream's `prop` re-export
    /// (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }` item
/// becomes a `#[test]` running `cases` seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::seeded_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut proptest_rng,
                        );
                    )+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            message
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {:?} != {:?}: {}",
                l,
                r,
                format!($($fmt)+)
            ));
        }
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0..7.0f64, n in 1usize..9) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0..5usize, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn prop_map_applies(doubled in (0..10u32).prop_map(|x| x * 2)) {
            prop_assert!(doubled % 2 == 0);
            prop_assert_eq!(doubled % 2, 0, "doubled = {}", doubled);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n != 3);
            prop_assert!(n != 3);
        }
    }

    #[test]
    fn seeded_rng_is_deterministic_per_case() {
        use rand::RngCore;
        let mut a = crate::seeded_rng("t", 5);
        let mut b = crate::seeded_rng("t", 5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::seeded_rng("t", 6);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
