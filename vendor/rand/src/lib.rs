//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and an empty registry cache,
//! so this workspace vendors the exact `rand 0.8` API subset it consumes:
//! [`RngCore`], [`Rng`] (with `gen` / `gen_range`), [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. The generator behind
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — a small, fast,
//! high-quality PRNG; streams differ from upstream `rand`, which is fine
//! because every consumer in this workspace treats seeds as opaque.

#![warn(missing_docs)]

/// The core interface of a random-number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly from an `RngCore` ("the `Standard`
/// distribution" in upstream terms); backs [`Rng::gen`].
pub trait StandardSample {
    /// Draws one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty float range for gen_range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range for gen_range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_range_impls!(f64, f32);

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range for gen_range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % width;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range for gen_range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % width;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (e.g. `f64` in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot emit
            // four zero words in a row, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&x));
            let i = rng.gen_range(0..7usize);
            assert!(i < 7);
            let j = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
        }
        // Every bucket of a small integer range is hit.
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "49! permutations: identity is implausible");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(4);
        let dynrng: &mut dyn RngCore = &mut rng;
        let x = dynrng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let _: f64 = dynrng.gen();
    }
}
