//! Offline vendored stand-in for `criterion`.
//!
//! The build environment cannot fetch crates, so this implements the subset
//! of the criterion API the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! `bench_function` / `bench_with_input` / `sample_size`, `BenchmarkId`, and
//! `black_box` — as a genuine wall-clock harness: warm-up, batched sampling,
//! and a median-of-samples report in ns/iter. It is deliberately simple but
//! honest: numbers come from `std::time::Instant`, not estimates.
//!
//! Passing `--test` or `--quick` on the command line (as `cargo test` does
//! for bench targets) switches to a single-iteration smoke run so benches
//! stay cheap outside `cargo bench`.

#![warn(missing_docs)]

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A compound id `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// The timing routine handed to benchmark closures.
pub struct Bencher {
    quick: bool,
    samples: usize,
    /// Median ns/iter of the last `iter` call, if any.
    measured_ns: Option<f64>,
    total_iters: u64,
}

impl Bencher {
    fn new(quick: bool, samples: usize) -> Self {
        Self {
            quick,
            samples,
            measured_ns: None,
            total_iters: 0,
        }
    }

    /// Times `routine`, storing a median ns/iter estimate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.quick {
            let t = Instant::now();
            black_box(routine());
            self.measured_ns = Some(t.elapsed().as_nanos() as f64);
            self.total_iters = 1;
            return;
        }

        // Warm-up: run until ~40ms of wall time or 5 iterations, whichever
        // comes first, and estimate the per-iteration cost from it.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 5 && warm_start.elapsed() < Duration::from_millis(40) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Batch size targeting ~15ms per sample, then `samples` timed batches.
        let batch = ((0.015 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        let mut total_iters = warm_iters;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total_iters += batch;
            per_iter_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter_ns.sort_by(f64::total_cmp);
        self.measured_ns = Some(per_iter_ns[per_iter_ns.len() / 2]);
        self.total_iters = total_iters;
    }
}

fn report(path: &str, bencher: &Bencher) {
    match bencher.measured_ns {
        Some(ns) => {
            let human = if ns >= 1e9 {
                format!("{:.4} s", ns / 1e9)
            } else if ns >= 1e6 {
                format!("{:.4} ms", ns / 1e6)
            } else if ns >= 1e3 {
                format!("{:.4} µs", ns / 1e3)
            } else {
                format!("{ns:.1} ns")
            };
            println!(
                "{path:<60} time: {human}/iter  ({} iters)",
                bencher.total_iters
            );
        }
        None => println!("{path:<60} (no measurement: bencher.iter never called)"),
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    quick: bool,
}

impl Criterion {
    /// Builds a driver, honouring `--test` / `--quick` CLI flags.
    pub fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--test" || a == "--quick");
        Self { quick }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 11,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.quick, 11);
        f(&mut b);
        report(&id.id, &b);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.quick, self.samples);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.quick, self.samples);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Ends the group (upstream flushes reports here; ours are immediate).
    pub fn finish(self) {}
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion { quick: true };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
