//! Offline vendored stand-in for `serde`.
//!
//! The workspace only ever *decorates* types with `#[derive(Serialize,
//! Deserialize)]`; nothing serializes at runtime (there is no `serde_json`
//! or similar in the tree). With no network access to fetch the real crate,
//! these derives are provided as no-ops so the annotations compile. If real
//! serialization is ever needed, replace this vendor crate with upstream
//! serde and everything downstream keeps working unchanged.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
