//! # ucpc — Uncertain Centroid based Partitional Clustering of Uncertain Data
//!
//! A full reproduction of Gullo & Tagarelli's VLDB 2012 paper: the U-centroid
//! theory and UCPC algorithm, every baseline it is evaluated against, the
//! uncertainty model and dataset substrates, the cluster-validity criteria,
//! and an experiment harness regenerating every table and figure.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`uncertain`] — uncertain objects, pdfs, moments, sampling, distances;
//! * [`core`] — the U-centroid, the closed-form objective, UCPC;
//! * [`baselines`] — UK-means family, MMVar, UK-medoids, U-AHC, FDBSCAN,
//!   FOPTICS;
//! * [`datasets`] — Table-1 dataset generators and the Section-5.1
//!   uncertainty pipeline;
//! * [`eval`] — F-measure, Θ, intra/inter, Q.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use ucpc::core::Ucpc;
//! use ucpc::uncertain::{UncertainObject, UnivariatePdf};
//!
//! let data: Vec<UncertainObject> = [0.0, 0.3, 5.0, 5.3]
//!     .iter()
//!     .map(|&c| UncertainObject::new(vec![UnivariatePdf::normal(c, 0.1)]))
//!     .collect();
//! let mut rng = StdRng::seed_from_u64(1);
//! let result = Ucpc::default().run(&data, 2, &mut rng).unwrap();
//! assert_eq!(result.clustering.label(0), result.clustering.label(1));
//! ```

#![warn(missing_docs)]

pub use ucpc_baselines as baselines;
pub use ucpc_core as core;
pub use ucpc_datasets as datasets;
pub use ucpc_eval as eval;
pub use ucpc_uncertain as uncertain;
